//! The parallel, memoizing experiment engine — the execution end of the
//! request → plan → execute pipeline.
//!
//! Every result the paper reports is a grid of *independent* model
//! evaluations — Fig. 1 is a 10×6 `(teams, V)` sweep per case, Table 1 is
//! eight kernel timings, the Section IV study is sixteen co-run series —
//! and many points recur verbatim across drivers (the paper's optimized
//! configurations appear in the Fig. 1 sweeps, Table 1, `autotune`, and
//! the co-run GPU-only leg). The pipeline exploits both properties in
//! three explicit layers:
//!
//! 1. A declarative [`Request`](crate::request::Request) says *what* to
//!    compute and nothing about how (see [`crate::request`]).
//! 2. The [`Planner`] lowers a request into a [`Plan`]: a deduplicated
//!    DAG of cacheable [`WorkItem`]s, consulting both caches *without
//!    executing anything* so the plan predicts its own hit rate (see
//!    [`crate::plan`]).
//! 3. The [`Executor`](crate::exec::Executor) walks the plan's stages on
//!    the worker pool with per-stage timing, then assembles typed
//!    responses from the now-warm caches (see [`crate::exec`]).
//!
//! [`Engine::run`] ties them together and memoizes whole responses by
//! [`Request::id`](crate::request::Request::id) — a repeated identical
//! request (the `ghr serve` steady state) is answered with zero
//! re-planning. Underneath sit:
//!
//! * a **sharded, hash-keyed result cache** keyed by [`WorkItem`] — the
//!   resolved [`TargetRegion`] geometry × element count/types × supply
//!   constraint — so identical points are evaluated once per process no
//!   matter which request asks;
//! * a **parallel fan driver** that spreads a stage's items across the
//!   [`ghr_parallel::ThreadPool`] and reassembles results in deterministic
//!   index order — tables are bit-identical to the serial path at any
//!   thread count.
//!
//! Cache keys are *resolved geometry*, not driver-level names: Table 1's
//! optimized row and the Fig. 1 sweep both key to
//! `TargetRegion::optimized(65536, v)` at the case's paper scale, so
//! `ghr all` pays for each unique kernel timing exactly once.
//!
//! A co-run series ([`CorunConfig`]) has two granularities. Its A1 variant
//! is *stateful* across the `p` loop (the allocation survives and pages
//! stay where earlier iterations migrated them), so the series — not the
//! `p` point — is its smallest independently evaluable unit and it is one
//! [`WorkItem`]. An **A2** series frees and re-allocates per `p`
//! iteration, so each of its eleven points is an independent item: the
//! planner fans them and the assembly stitches the series in `p` order
//! ([`crate::corun::run_corun_point`]).
//!
//! When a [`PersistentStore`] is attached ([`Engine::with_store_dir`]),
//! every memoized point also round-trips through a versioned on-disk store
//! keyed by the same `WorkItem` render (one file per machine fingerprint),
//! so a second `ghr all` in another process answers from disk instead of
//! re-evaluating.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::autotune::TunedConfig;
use crate::case::Case;
use crate::corun::{run_corun, run_corun_point, AllocSite, CorunConfig, CorunPoint, CorunSeries};
use crate::exec::Executor;
use crate::kernels::{self, WorkloadPoint, WorkloadResult, WORKLOAD_TEAMS_AXIS};
use crate::plan::{refine_axes, Plan, Planner, WorkItem};
use crate::reduction::ReductionSpec;
use crate::replica::{BuildId, ReadMostly};
use crate::request::{autotune_sweep, Request, Response};
use crate::store::{self, PersistentStore};
use crate::study::{self, CorunStudy};
use crate::sweep::{GpuSweep, SweepMode, SweepPoint, SweepResult};
use crate::table1::{Table1, Table1Row};
use crate::whatif::{self, RuntimeScenario, WhatIfRow, WhatIfStudy};
use ghr_gpusim::GpuModel;
use ghr_machine::MachineConfig;
use ghr_omp::{OmpRuntime, TargetRegion};
use ghr_parallel::ThreadPool;
use ghr_types::{
    Bandwidth, CacheLayer, CacheLayerStats, DType, GhrError, KernelDescriptor, Result, StageTiming,
    WorkloadKind,
};

/// FNV-1a, used for the machine fingerprint and for shard selection.
/// Deterministic across processes and platforms (unlike the std
/// `RandomState`), which keeps shard occupancy reproducible.
#[derive(Debug, Clone)]
pub struct Fnv1aHasher(u64);

impl Default for Fnv1aHasher {
    fn default() -> Self {
        Fnv1aHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1aHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

type BuildFnv = BuildHasherDefault<Fnv1aHasher>;

/// Fingerprint of a machine description (FNV-1a over its debug render):
/// results cached under one machine are never served for another. Selects
/// the persistent store *file*; within a file, keys are fingerprint-free
/// [`WorkItem`] renders.
pub fn machine_fingerprint(machine: &MachineConfig) -> u64 {
    let mut h = Fnv1aHasher::default();
    h.write(format!("{machine:?}").as_bytes());
    h.finish()
}

/// The eight Table 1 kernel specs in row order (baseline then optimized
/// per case) — one definition for the planner's lowering and the
/// executor's assembly.
pub(crate) fn table1_specs() -> Vec<ReductionSpec> {
    let mut specs = Vec::with_capacity(8);
    for case in Case::ALL {
        specs.push(ReductionSpec::baseline(case));
        specs.push(ReductionSpec::optimized_paper(case));
    }
    specs
}

const SHARDS: usize = 16;

/// Stripes in the per-work-item evaluation lock table. A stripe is held
/// only while one item is being evaluated (never across items, and never
/// by the A2 series assembly, which re-reads already-fanned points), so
/// collisions cost contention, not correctness — and no lock ordering
/// issue can arise because no thread ever holds two stripes.
const EVAL_STRIPES: usize = 64;

/// Slots in the in-flight claim table. A power of two (the slot index is
/// a mask of the request id) sized far above any realistic number of
/// simultaneously cold request ids, so slot aliasing — two *different*
/// ids mapping to one slot — stays a latency rarity, never a correctness
/// event. Fixed at construction: the table's footprint is
/// `CLAIM_SLOTS * 8` bytes, reported as the in-flight layer's
/// `replica_log_bytes`.
const CLAIM_SLOTS: usize = 1024;

/// Outcome of one claim attempt on the in-flight table.
enum Claim {
    /// This caller owns the id: it is the single-flight leader and must
    /// evaluate, publish, then release the slot.
    Leader,
    /// The same id is already claimed by another thread — wait for its
    /// publish (the coalescing path).
    InFlight,
    /// A *different* id occupies the home slot; wait for it to vacate
    /// and retry. Carries the occupant observed, so the wait can watch
    /// for any change.
    Aliased(u64),
}

/// Lock-free single-flight table: one CAS-claimed `AtomicU64` slot per
/// request id (home slot only — no probing, so a claim/release pair can
/// never leave a tombstone for a second leader to race past). Replaces
/// the `Mutex<HashMap<u64, Flight>>` in-flight map: claiming, joining
/// and releasing are all atomics, so the coalescing path performs **zero
/// mutex acquisitions** — followers spin briefly then sleep-poll on the
/// leader's release, and re-probe the response caches the leader
/// populated *before* releasing.
struct ClaimTable {
    slots: Vec<AtomicU64>,
    claims: AtomicU64,
    joins: AtomicU64,
    aliased: AtomicU64,
}

impl ClaimTable {
    fn new() -> Self {
        ClaimTable {
            slots: (0..CLAIM_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            claims: AtomicU64::new(0),
            joins: AtomicU64::new(0),
            aliased: AtomicU64::new(0),
        }
    }

    /// A slot value of 0 means "vacant", so id 0 — possible in principle
    /// for an FNV request hash — is remapped to a fixed odd constant.
    fn slot_key(id: u64) -> u64 {
        if id == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            id
        }
    }

    fn slot(&self, key: u64) -> &AtomicU64 {
        &self.slots[(key as usize) & (CLAIM_SLOTS - 1)]
    }

    /// Try to claim `id`'s home slot. The success ordering is `AcqRel`:
    /// the acquire half pairs with the previous leader's releasing
    /// store, so a caller that wins a just-vacated slot also observes
    /// everything that leader published before leaving.
    fn try_claim(&self, id: u64) -> Claim {
        let key = Self::slot_key(id);
        match self
            .slot(key)
            .compare_exchange(0, key, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => {
                self.claims.fetch_add(1, Ordering::Relaxed);
                Claim::Leader
            }
            Err(occupant) if occupant == key => {
                self.joins.fetch_add(1, Ordering::Relaxed);
                Claim::InFlight
            }
            Err(occupant) => {
                self.aliased.fetch_add(1, Ordering::Relaxed);
                Claim::Aliased(occupant)
            }
        }
    }

    /// Release a slot this caller leads. Store-release: everything the
    /// leader published (response caches, replica logs) is visible to
    /// whoever claims or observes the slot next.
    fn release(&self, id: u64) {
        let key = Self::slot_key(id);
        let _ = self
            .slot(key)
            .compare_exchange(key, 0, Ordering::AcqRel, Ordering::Relaxed);
    }

    /// Wait until the slot's occupant changes from `occupant` — a short
    /// spin for evaluations racing to publish, then a bounded sleep
    /// poll. No mutex, no condvar: the follower parks on the leader's
    /// releasing store, not on a lock.
    fn wait_change(&self, occupant: u64) {
        let slot = self.slot(occupant);
        for _ in 0..64 {
            if slot.load(Ordering::Acquire) != occupant {
                return;
            }
            std::hint::spin_loop();
        }
        let mut pause = std::time::Duration::from_micros(50);
        while slot.load(Ordering::Acquire) == occupant {
            std::thread::sleep(pause);
            pause = (pause * 2).min(std::time::Duration::from_millis(1));
        }
    }

    /// The table's fixed footprint in bytes.
    fn bytes(&self) -> u64 {
        (self.slots.len() * std::mem::size_of::<AtomicU64>()) as u64
    }
}

/// Releases a leader's claim slot on drop, so a panicking or failed
/// evaluation never strands its followers: the slot vacates and the next
/// arrival re-probes the caches and (on a miss) becomes the new leader —
/// the id stays evaluable.
struct ClaimGuard<'a> {
    table: &'a ClaimTable,
    id: u64,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        self.table.release(self.id);
    }
}

/// How [`Engine::respond`] obtained its response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseSource {
    /// Planned and executed by this call (the single-flight leader).
    Fresh,
    /// Answered whole from the response cache.
    ResponseCache,
    /// An identical request was already in flight on another thread; this
    /// call waited for its result instead of duplicating the work.
    Coalesced,
}

/// Which structure answers warm probes across *every* replicated cache
/// layer — the response memo, the point cache, the co-run series cache
/// and the per-`p` co-run point cache. Cold evaluations publish to
/// *both* structures, so the mode can be switched at run time (the
/// loadgen harness A/Bs the two in one process) without losing entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseCacheMode {
    /// NR-lite per-thread replicas of the append-only logs (the
    /// default): a warm hit on a synced replica takes **zero** mutex
    /// acquisitions — see [`crate::replica`].
    Replica,
    /// The sharded `Mutex<HashMap>` caches — every warm hit takes one
    /// shard lock. Kept as the measurable pre-replica baseline and the
    /// A/B escape hatch.
    Locked,
}

/// A response plus its provenance, as [`Engine::respond`] reports it —
/// what the serve layer renders frame headers from.
#[derive(Debug, Clone)]
pub struct Responded {
    /// The assembled (or cached) response.
    pub response: Arc<Response>,
    /// Where the response came from.
    pub source: ResponseSource,
    /// Points freshly evaluated while this call led the request. Exact
    /// when requests run one at a time; an upper bound under concurrency
    /// (the global counter also advances for overlapping work other
    /// requests evaluate meanwhile). Always 0 for cache hits and
    /// coalesced waits.
    pub evals: u64,
}

/// Stripes in a [`Striped`] counter — enough that a typical worker count
/// maps threads to distinct slots.
const COUNTER_STRIPES: usize = 16;

/// One counter stripe, padded to its own cache line so adjacent stripes
/// never false-share.
#[repr(align(64))]
struct StripeSlot(AtomicU64);

/// A thread-striped event counter: each thread adds to its own padded
/// slot, so the warm hot path never bounces one shared cache line across
/// cores the way a single `AtomicU64` does under 8-way read traffic.
/// Reads sum every slot — exact once writers are quiesced (or ordered by
/// a barrier), momentarily behind while they race.
struct Striped {
    slots: [StripeSlot; COUNTER_STRIPES],
}

impl Striped {
    fn new() -> Self {
        Striped {
            slots: std::array::from_fn(|_| StripeSlot(AtomicU64::new(0))),
        }
    }

    fn add(&self, n: u64) {
        self.slots[stripe_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.slots.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// Round-robin slot assignment, fixed per thread on first use.
fn stripe_index() -> usize {
    static NEXT_STRIPE: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static STRIPE: usize =
            (NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % COUNTER_STRIPES as u64) as usize;
    }
    STRIPE.with(|s| *s)
}

/// A sharded hash map: N independent mutexes instead of one, so parallel
/// grid evaluations rarely contend on the cache.
struct ShardedCache<K, V> {
    shards: Vec<Mutex<HashMap<K, V, BuildFnv>>>,
}

impl<K: Eq + Hash, V: Clone> ShardedCache<K, V> {
    fn new() -> Self {
        ShardedCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(HashMap::default()))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V, BuildFnv>> {
        let mut h = Fnv1aHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() % SHARDS as u64) as usize]
    }

    fn get(&self, key: &K) -> Option<V> {
        self.shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned()
    }

    fn insert(&self, key: K, value: V) {
        self.shard(&key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, value);
    }
}

/// Warm-path event counters for one replicated cache layer. Lock
/// acquisitions and snapshot hits ride the thread-striped counters (they
/// sit on the warm hot path); syncs are rare by construction.
struct LayerCounters {
    warm_locks: Striped,
    syncs: AtomicU64,
    snapshot_hits: Striped,
}

impl LayerCounters {
    fn new() -> Self {
        LayerCounters {
            warm_locks: Striped::new(),
            syncs: AtomicU64::new(0),
            snapshot_hits: Striped::new(),
        }
    }
}

/// One engine cache layer on the NR-lite substrate: the locked sharded
/// map (the [`ResponseCacheMode::Locked`] baseline) *plus* the
/// append-only replica log, with per-layer counters. Cold evaluations
/// [`publish`](ReplicatedCache::publish) to both structures, so the mode
/// can be flipped at run time without losing entries; warm probes go
/// through whichever structure the mode selects and account their own
/// lock cost, making lock-freedom provable per layer.
struct ReplicatedCache<K, V, S = crate::replica::BuildFnv> {
    locked: ShardedCache<K, V>,
    log: ReadMostly<K, V, S>,
    counters: LayerCounters,
}

impl<K, V, S> ReplicatedCache<K, V, S>
where
    K: Clone + Eq + Hash + Send + 'static,
    V: Clone + Send + 'static,
    S: std::hash::BuildHasher + Default + Clone + Send + 'static,
{
    fn new() -> Self {
        ReplicatedCache {
            locked: ShardedCache::new(),
            log: ReadMostly::new(),
            counters: LayerCounters::new(),
        }
    }

    /// Warm probe in the given mode, with lock accounting: a locked-mode
    /// hit charges its shard lock, a replica-mode hit charges the log
    /// replay if (and only if) the replica was behind, and a synced
    /// snapshot hit charges nothing. Misses are the cold path and charge
    /// nothing — the evaluation they lead into takes locks by design.
    fn probe(&self, key: &K, mode: ResponseCacheMode) -> Option<V> {
        match mode {
            ResponseCacheMode::Locked => {
                let value = self.locked.get(key);
                if value.is_some() {
                    self.counters.warm_locks.add(1);
                }
                value
            }
            ResponseCacheMode::Replica => {
                let read = self.log.get(key);
                if read.synced {
                    self.counters.syncs.fetch_add(1, Ordering::Relaxed);
                }
                if read.value.is_some() {
                    if read.locks == 0 {
                        self.counters.snapshot_hits.add(1);
                    } else {
                        self.counters.warm_locks.add(read.locks);
                    }
                }
                read.value
            }
        }
    }

    /// Existence probe (the planner's dry run) — same accounting as
    /// [`probe`](ReplicatedCache::probe), so plan-time reads show up in
    /// the per-layer ledger too.
    fn contains(&self, key: &K, mode: ResponseCacheMode) -> bool {
        self.probe(key, mode).is_some()
    }

    /// Publish a cold result to both structures. First write wins in the
    /// log (duplicate publishes from double-checked racers or store
    /// loads do not grow it); the locked map insert is idempotent
    /// because engine values are deterministic per key.
    fn publish(&self, key: K, value: V) {
        self.locked.insert(key.clone(), value.clone());
        self.log.publish(key, value);
    }

    /// Bring the calling thread's replica of this layer up to date.
    fn sync(&self) -> bool {
        let synced = self.log.sync();
        if synced {
            self.counters.syncs.fetch_add(1, Ordering::Relaxed);
        }
        synced
    }

    /// This layer's row in the per-layer ledger.
    fn stats(&self) -> CacheLayerStats {
        CacheLayerStats {
            warm_lock_acquisitions: self.counters.warm_locks.sum(),
            replica_published: self.log.published(),
            replica_syncs: self.counters.syncs.load(Ordering::Relaxed),
            replica_snapshot_hits: self.counters.snapshot_hits.sum(),
            replica_log_bytes: self.log.log_bytes(),
        }
    }
}

/// Counters the `--stats` flag reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStats {
    /// Worker threads the engine fans grids across (1 = serial).
    pub threads: usize,
    /// Requests run through the pipeline ([`Engine::run`]).
    pub requests: u64,
    /// Requests answered whole from the response cache — zero re-planning.
    pub response_hits: u64,
    /// Requests that waited for an identical in-flight request instead of
    /// planning a duplicate evaluation (single-flight coalescing; only
    /// nonzero when [`Engine::respond`] runs concurrently).
    pub coalesced: u64,
    /// Cache lookups performed.
    pub lookups: u64,
    /// Lookups answered from the in-process cache.
    pub hits: u64,
    /// Points actually evaluated (an A1 co-run series counts as one point
    /// — it is its atomic unit of evaluation; each A2 `p` point counts
    /// individually; see the module docs).
    pub evaluated: u64,
    /// Entries the persistent store held when it was opened (0 when no
    /// store is attached).
    pub persistent_loaded: u64,
    /// In-process misses answered from the persistent store.
    pub persistent_hits: u64,
    /// Lookups that missed both caches and had to evaluate (only counted
    /// while a store is attached).
    pub persistent_misses: u64,
    /// Freshly evaluated results written to the persistent store.
    pub persistent_stored: u64,
    /// Grid points refined sweeps actually evaluated.
    pub sweep_evaluated: u64,
    /// Grid points refined sweeps skipped (full grid minus evaluated) —
    /// reported so an adaptively truncated grid is never silent.
    pub sweep_skipped: u64,
    /// Mutex acquisitions performed by warm probes that were answered
    /// with a value, summed across every cache layer (the aggregate of
    /// `layers`). In [`ResponseCacheMode::Locked`] every warm hit takes
    /// at least one shard lock; in [`ResponseCacheMode::Replica`] a
    /// synced replica hit takes zero — the counter the loadgen warm
    /// phases prove stays flat.
    pub warm_lock_acquisitions: u64,
    /// Distinct records appended to the replica logs, summed across
    /// layers (publication is first-write-wins, so per layer this equals
    /// the number of distinct published keys).
    pub replica_published: u64,
    /// Replica reads that had to replay a log tail under its lock
    /// (a thread's first read, or its first read after a publication),
    /// summed across layers.
    pub replica_syncs: u64,
    /// Warm reads answered wait-free from an already-synced replica
    /// snapshot — zero mutex acquisitions — summed across layers.
    pub replica_snapshot_hits: u64,
    /// Shallow bytes held by the append-only replica logs plus the
    /// claim table's fixed slot array, summed across layers. Bounded by
    /// distinct published keys, not by request traffic.
    pub replica_log_bytes: u64,
    /// The per-layer ledger behind the aggregates above, indexed by
    /// [`CacheLayer`] — response, point, series, corun, in-flight — so
    /// lock-freedom is provable layer by layer.
    pub layers: [CacheLayerStats; 5],
    /// Leader claims won in the in-flight claim table (one per cold
    /// request-id evaluation attempt).
    pub inflight_claims: u64,
    /// Arrivals that found their id already claimed and waited for the
    /// leader's publish without taking a lock (the coalescing path).
    pub inflight_joins: u64,
    /// Waits on a home slot occupied by a *different* id (slot aliasing
    /// — a latency rarity at 1024 slots, never a correctness event).
    pub inflight_aliased: u64,
}

impl EngineStats {
    /// One layer's row of the per-layer ledger.
    pub fn layer(&self, layer: CacheLayer) -> CacheLayerStats {
        self.layers[layer as usize]
    }

    /// Fraction of lookups answered from either cache (in-process or
    /// persistent) — i.e. not freshly evaluated. 0.0 before any lookup,
    /// never a division by zero.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            (self.hits + self.persistent_hits) as f64 / self.lookups as f64
        }
    }

    /// Fraction of requests answered whole from the response cache. 0.0
    /// before any request, never a division by zero.
    pub fn response_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.response_hits as f64 / self.requests as f64
        }
    }
}

/// Number of threads to use when none is requested explicitly: the
/// `GHR_THREADS` environment variable if set and positive, otherwise the
/// host's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(s) = std::env::var("GHR_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The evaluation engine: one machine, one worker pool, one result cache.
///
/// Construct it once per process (or per `ghr` invocation) and route every
/// request through it; repeated and overlapping experiments then share
/// both the pool and the memoized points. [`Engine::run`] is the pipeline
/// front door; the named methods ([`Engine::table1`], [`Engine::sweep`],
/// …) are typed shorthands that build the equivalent request.
pub struct Engine {
    machine: MachineConfig,
    rt: OmpRuntime,
    fingerprint: u64,
    threads: usize,
    pool: Option<ThreadPool>,
    store: Option<PersistentStore>,
    points: ReplicatedCache<WorkItem, f64>,
    series: ReplicatedCache<CorunConfig, Arc<CorunSeries>>,
    corun_pts: ReplicatedCache<(CorunConfig, u32), CorunPoint>,
    responses: ReplicatedCache<u64, Arc<Response>, BuildId>,
    cache_mode: AtomicU8,
    inflight: ClaimTable,
    eval_locks: Vec<Mutex<()>>,
    stage_log: Mutex<Vec<StageTiming>>,
    requests: Striped,
    response_hits: Striped,
    coalesced: AtomicU64,
    lookups: AtomicU64,
    hits: AtomicU64,
    evaluated: AtomicU64,
    pstore_hits: AtomicU64,
    pstore_misses: AtomicU64,
    pstore_stored: AtomicU64,
    sweep_evaluated: AtomicU64,
    sweep_skipped: AtomicU64,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("fingerprint", &self.fingerprint)
            .field("threads", &self.threads)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Engine {
    /// Build an engine for a machine. `threads == 0` resolves via
    /// [`default_threads`] (`GHR_THREADS`, then available parallelism);
    /// `threads == 1` evaluates every grid serially on the caller's
    /// thread — the reference path the determinism tests compare against.
    pub fn new(machine: MachineConfig, threads: usize) -> Self {
        let threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        let fingerprint = machine_fingerprint(&machine);
        let rt = OmpRuntime::new(machine.clone());
        let pool = (threads > 1).then(|| ThreadPool::new(threads));
        Engine {
            machine,
            rt,
            fingerprint,
            threads,
            pool,
            store: None,
            points: ReplicatedCache::new(),
            series: ReplicatedCache::new(),
            corun_pts: ReplicatedCache::new(),
            responses: ReplicatedCache::new(),
            cache_mode: AtomicU8::new(0),
            inflight: ClaimTable::new(),
            eval_locks: (0..EVAL_STRIPES).map(|_| Mutex::new(())).collect(),
            stage_log: Mutex::new(Vec::new()),
            requests: Striped::new(),
            response_hits: Striped::new(),
            coalesced: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evaluated: AtomicU64::new(0),
            pstore_hits: AtomicU64::new(0),
            pstore_misses: AtomicU64::new(0),
            pstore_stored: AtomicU64::new(0),
            sweep_evaluated: AtomicU64::new(0),
            sweep_skipped: AtomicU64::new(0),
        }
    }

    /// Attach the persistent result store under `dir` (created on flush if
    /// missing). The engine opens the file matching its machine
    /// fingerprint and the current schema version; a mismatched or corrupt
    /// file loads as empty. Call [`Engine::flush_store`] (or rely on
    /// `Drop`) to write freshly evaluated points back.
    pub fn with_store_dir(mut self, dir: &Path) -> Self {
        self.store = Some(PersistentStore::open(dir, self.fingerprint));
        self
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&PersistentStore> {
        self.store.as_ref()
    }

    /// Flush the persistent store (no-op when none is attached or nothing
    /// is dirty). Returns the number of entries written.
    pub fn flush_store(&self) -> std::io::Result<u64> {
        match &self.store {
            Some(store) => store.flush(),
            None => Ok(0),
        }
    }

    /// The machine this engine evaluates against.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The OpenMP runtime the GPU points go through.
    pub fn rt(&self) -> &OmpRuntime {
        &self.rt
    }

    /// Worker threads grids fan across (1 = serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the engine counters, including the per-layer ledger
    /// (`layers`, indexed by [`CacheLayer`]) whose sums the aggregate
    /// `warm_lock_acquisitions` / `replica_*` fields report.
    pub fn stats(&self) -> EngineStats {
        // The claim table is lock-free by construction, so its layer row
        // carries a structurally-zero lock count (the gate that catches a
        // reintroduced mutex) and its fixed slot-array footprint as log
        // bytes; claim/join/alias traffic reports through the dedicated
        // `inflight_*` fields, not the replica record counters.
        let inflight = CacheLayerStats {
            warm_lock_acquisitions: 0,
            replica_published: 0,
            replica_syncs: 0,
            replica_snapshot_hits: 0,
            replica_log_bytes: self.inflight.bytes(),
        };
        let layers = [
            self.responses.stats(),
            self.points.stats(),
            self.series.stats(),
            self.corun_pts.stats(),
            inflight,
        ];
        let mut total = CacheLayerStats::default();
        for layer in &layers {
            total.accumulate(layer);
        }
        EngineStats {
            threads: self.threads,
            requests: self.requests.sum(),
            response_hits: self.response_hits.sum(),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            evaluated: self.evaluated.load(Ordering::Relaxed),
            persistent_loaded: self.store.as_ref().map_or(0, |s| s.loaded()),
            persistent_hits: self.pstore_hits.load(Ordering::Relaxed),
            persistent_misses: self.pstore_misses.load(Ordering::Relaxed),
            persistent_stored: self.pstore_stored.load(Ordering::Relaxed),
            sweep_evaluated: self.sweep_evaluated.load(Ordering::Relaxed),
            sweep_skipped: self.sweep_skipped.load(Ordering::Relaxed),
            warm_lock_acquisitions: total.warm_lock_acquisitions,
            replica_published: total.replica_published,
            replica_syncs: total.replica_syncs,
            replica_snapshot_hits: total.replica_snapshot_hits,
            replica_log_bytes: total.replica_log_bytes,
            layers,
            inflight_claims: self.inflight.claims.load(Ordering::Relaxed),
            inflight_joins: self.inflight.joins.load(Ordering::Relaxed),
            inflight_aliased: self.inflight.aliased.load(Ordering::Relaxed),
        }
    }

    /// Which structure currently answers warm [`Engine::respond`] probes.
    pub fn response_cache_mode(&self) -> ResponseCacheMode {
        if self.cache_mode.load(Ordering::Relaxed) == 1 {
            ResponseCacheMode::Locked
        } else {
            ResponseCacheMode::Replica
        }
    }

    /// Switch the warm-path structure at run time. Cold evaluations write
    /// to both structures, so switching never loses entries — the loadgen
    /// harness uses this to measure the locked baseline and the replica
    /// path in one process.
    pub fn set_response_cache_mode(&self, mode: ResponseCacheMode) {
        let raw = matches!(mode, ResponseCacheMode::Locked) as u8;
        self.cache_mode.store(raw, Ordering::Relaxed);
    }

    /// Per-stage wall-clock and work accounting for every plan this
    /// engine has executed, in execution order (`--stats-json` reads it).
    pub fn stage_timings(&self) -> Vec<StageTiming> {
        self.stage_log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    pub(crate) fn log_stage(&self, timing: StageTiming) {
        self.stage_log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(timing);
    }

    // -----------------------------------------------------------------
    // The pipeline front door
    // -----------------------------------------------------------------

    /// Run one request through the pipeline: response cache → plan →
    /// execute → assemble. A repeated identical request (same
    /// [`Request::id`]) is answered from the response cache with zero
    /// re-planning — the `ghr serve` steady state. Shorthand for
    /// [`Engine::respond`] when the provenance does not matter.
    pub fn run(&self, request: &Request) -> Result<Arc<Response>> {
        Ok(self.respond(request)?.response)
    }

    /// [`Engine::run`] with provenance: says whether the response was
    /// freshly evaluated, answered from the response cache, or coalesced
    /// onto an identical request already in flight on another thread
    /// (single-flight: concurrent duplicates wait for the leader's result
    /// instead of planning their own evaluation). Safe to call from any
    /// number of threads over one shared engine — every cache and counter
    /// behind it is mutex- or atomic-guarded.
    pub fn respond(&self, request: &Request) -> Result<Responded> {
        self.respond_with_id(request, request.id().0)
    }

    /// A warm response hit's provenance and counter bump: an arrival
    /// that waited on an in-flight leader counts as coalesced, a direct
    /// hit as a response-cache answer.
    fn warm_hit(&self, response: Arc<Response>, waited: bool) -> Responded {
        let source = if waited {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            ResponseSource::Coalesced
        } else {
            self.response_hits.add(1);
            ResponseSource::ResponseCache
        };
        Responded {
            response,
            source,
            evals: 0,
        }
    }

    /// [`Engine::respond`] with the request id precomputed by the caller
    /// (`id` must be `request.id().0`). Hot loops — the loadgen harness
    /// replaying a fixed catalog — hash each request once and reuse the
    /// id across thousands of calls, so the warm path's cost is the cache
    /// probe itself, not the canonical render feeding the hash.
    ///
    /// Lock ledger: the warm path takes **zero** mutexes end to end in
    /// [`ResponseCacheMode::Replica`] — the response probe is a replica
    /// snapshot read, and single-flight claiming/joining/releasing are
    /// all atomics on the claim table. Followers of an in-flight leader
    /// spin-then-sleep on the leader's releasing store (never on a lock)
    /// and then re-probe the caches the leader populated *before*
    /// releasing.
    pub fn respond_with_id(&self, request: &Request, id: u64) -> Result<Responded> {
        request.validate()?;
        self.requests.add(1);
        let mode = self.response_cache_mode();
        let mut waited = false;
        loop {
            if let Some(response) = self.responses.probe(&id, mode) {
                return Ok(self.warm_hit(response, waited));
            }
            match self.inflight.try_claim(id) {
                Claim::Leader => {
                    let guard = ClaimGuard {
                        table: &self.inflight,
                        id,
                    };
                    // Re-probe after winning the claim: the previous
                    // leader published to both cache structures before
                    // releasing the slot, and the winning CAS's acquire
                    // pairs with that release — so a miss here means the
                    // id is genuinely cold, not mid-publication.
                    if let Some(response) = self.responses.probe(&id, mode) {
                        drop(guard);
                        return Ok(self.warm_hit(response, waited));
                    }
                    let evals_before = self.evaluated.load(Ordering::Relaxed);
                    // On error (or panic) the guard releases the slot
                    // without a publication; waiting followers re-probe,
                    // miss, and re-claim — the id stays evaluable and
                    // each caller observes its own attempt's outcome.
                    let response = self.evaluate(request, id)?;
                    drop(guard);
                    return Ok(Responded {
                        response,
                        source: ResponseSource::Fresh,
                        evals: self
                            .evaluated
                            .load(Ordering::Relaxed)
                            .saturating_sub(evals_before),
                    });
                }
                Claim::InFlight => {
                    waited = true;
                    self.inflight.wait_change(ClaimTable::slot_key(id));
                }
                Claim::Aliased(occupant) => {
                    self.inflight.wait_change(occupant);
                }
            }
        }
    }

    /// Plan and execute one cold request, publishing the assembled
    /// response to both warm structures (the single-flight leader's
    /// body) — and doing so *before* the caller releases its claim slot.
    fn evaluate(&self, request: &Request, id: u64) -> Result<Arc<Response>> {
        let plan = Planner::new(self).plan(request)?;
        let mut responses = Executor::new(self).run(&plan)?;
        let response = responses
            .pop()
            .ok_or_else(|| GhrError::internal("plan produced no response".to_string()))?;
        self.responses.publish(id, Arc::clone(&response));
        Ok(response)
    }

    /// Bring the calling thread's replicas of every replicated cache
    /// layer up to the current log versions, paying each layer's replay
    /// now instead of on the next warm read. Returns the number of
    /// layers that actually replayed. The loadgen warmup calls this per
    /// connection so timed warm sections start from synced replicas.
    pub fn sync_replicas(&self) -> usize {
        let synced = [
            self.responses.sync(),
            self.points.sync(),
            self.series.sync(),
            self.corun_pts.sync(),
        ];
        synced.into_iter().filter(|s| *s).count()
    }

    /// [`Engine::sync_replicas`] on *every* pool worker thread: one
    /// barriered job per worker, so each job necessarily lands on a
    /// distinct thread. The coordinator joins the barrier from inside
    /// the scope closure — blocked there, it cannot "help" run a
    /// broadcast job on its own thread (scope waiters steal queued
    /// jobs), which would leave one worker unsynced. Returns the number
    /// of (worker, layer) replays. Call only from a quiescent
    /// coordinator — a pool already running jobs (or two concurrent
    /// broadcasts) would deadlock the barrier.
    pub fn sync_pool_replicas(&self) -> usize {
        let Some(pool) = &self.pool else { return 0 };
        let workers = pool.threads();
        let barrier = std::sync::Barrier::new(workers + 1);
        let replayed = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    barrier.wait();
                    replayed.fetch_add(self.sync_replicas() as u64, Ordering::Relaxed);
                });
            }
            barrier.wait();
        });
        replayed.load(Ordering::Relaxed) as usize
    }

    /// Lock the evaluation stripe for a cache key: at most one thread
    /// evaluates a given work item; racing threads take the stripe after
    /// the leader and re-probe the cache (double-checked locking).
    fn eval_stripe(&self, key: &impl Hash) -> std::sync::MutexGuard<'_, ()> {
        let mut h = Fnv1aHasher::default();
        key.hash(&mut h);
        self.eval_locks[(h.finish() % EVAL_STRIPES as u64) as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Lower a request into its plan without executing anything (the
    /// `ghr plan` dry run).
    pub fn plan(&self, request: &Request) -> Result<Plan> {
        Planner::new(self).plan(request)
    }

    /// Lower several requests into one combined, cross-request-deduplicated
    /// plan without executing anything.
    pub fn plan_many(&self, requests: &[Request]) -> Result<Plan> {
        Planner::new(self).plan_many(requests)
    }

    // -----------------------------------------------------------------
    // Work-item evaluation (the executor's fan target)
    // -----------------------------------------------------------------

    /// Whether `item` would be answered from a cache right now — the
    /// planner's probe. Goes through the active [`ResponseCacheMode`]
    /// like every other warm read (in replica mode a synced replica
    /// answers with zero locks), so plan-time probes appear in the
    /// per-layer lock ledger too.
    pub(crate) fn probe_item(&self, item: &WorkItem) -> bool {
        let mode = self.response_cache_mode();
        let in_memory = match item {
            WorkItem::CorunSeries(cfg) => self.series.contains(cfg, mode),
            WorkItem::CorunPoint(cfg, i) => self.corun_pts.contains(&(*cfg, *i), mode),
            WorkItem::Gpu { .. } | WorkItem::WhatIf { .. } | WorkItem::Kernel { .. } => {
                self.points.contains(item, mode)
            }
        };
        in_memory
            || self
                .store
                .as_ref()
                .is_some_and(|s| s.contains(&format!("{item:?}")))
    }

    /// Evaluate (or cache-fill) one work item. Results land in the item
    /// caches; the assembly re-reads them as hits.
    pub(crate) fn eval_item(&self, item: &WorkItem) -> Result<()> {
        match *item {
            WorkItem::Gpu {
                region,
                m,
                elem,
                acc,
                supply_bits,
            } => {
                self.gpu_point(
                    &region,
                    m,
                    elem,
                    acc,
                    supply_bits.map(|bits| Bandwidth::gbps(f64::from_bits(bits))),
                )?;
            }
            WorkItem::CorunSeries(cfg) => {
                self.corun_series(&cfg)?;
            }
            WorkItem::CorunPoint(cfg, i) => {
                self.corun_point_a2(&cfg, i)?;
            }
            WorkItem::WhatIf { scenario, case } => {
                self.whatif_point(scenario, case)?;
            }
            WorkItem::Kernel {
                kind,
                region,
                m,
                elem,
                acc,
            } => {
                self.kernel_point(kind, &region, m, elem, acc)?;
            }
        }
        Ok(())
    }

    /// Fan a stage's items across the pool (see [`Engine::map_grid`]).
    pub(crate) fn map_items(&self, items: &[WorkItem]) -> Result<()> {
        self.map_grid(items, |item| self.eval_item(item))?
            .into_iter()
            .collect()
    }

    /// Fan `f` over `items` and return results in item order. Uses the
    /// pool when one exists and the grid has more than one point; the
    /// reassembled vector is identical to the serial map either way. A
    /// worker that panics surfaces as [`GhrError::Internal`] (after every
    /// other job has drained) instead of aborting the whole study.
    fn map_grid<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        match &self.pool {
            Some(pool) if items.len() > 1 => pool.try_parallel_map(items, f).map_err(|payload| {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic payload");
                GhrError::internal(format!("worker panicked: {msg}"))
            }),
            _ => Ok(items.iter().map(f).collect()),
        }
    }

    /// Look up an in-process miss in the persistent store; decode with
    /// `dec`. Counts a persistent hit or miss as a side effect.
    fn store_get<V>(&self, key: &str, dec: impl FnOnce(&str) -> Option<V>) -> Option<V> {
        let store = self.store.as_ref()?;
        match store.get(key).as_deref().and_then(dec) {
            Some(v) => {
                self.pstore_hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.pstore_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record a freshly evaluated result in the persistent store.
    fn store_put(&self, key: String, value: String) {
        if let Some(store) = &self.store {
            store.put(key, value);
            self.pstore_stored.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Memoized scalar evaluation: in-process cache, then the persistent
    /// store, then `eval` (whose result feeds both). The miss path runs
    /// under the key's evaluation stripe, so concurrent requests racing on
    /// the same point evaluate it once — the losers re-probe the cache
    /// after the leader's insert and count a hit.
    fn cached(&self, key: WorkItem, eval: impl FnOnce() -> Result<f64>) -> Result<f64> {
        let mode = self.response_cache_mode();
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(v) = self.points.probe(&key, mode) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        let stripe = self.eval_stripe(&key);
        // The stripe mutex orders the leader's publish before this
        // re-probe, so a racing loser's replica read observes the fresh
        // log version and syncs to a hit.
        if let Some(v) = self.points.probe(&key, mode) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        let skey = format!("{key:?}");
        if let Some(v) = self.store_get(&skey, store::decode_f64) {
            self.points.publish(key, v);
            return Ok(v);
        }
        let v = eval()?;
        self.evaluated.fetch_add(1, Ordering::Relaxed);
        self.store_put(skey, store::encode_f64(v));
        self.points.publish(key, v);
        drop(stripe);
        Ok(v)
    }

    /// Bandwidth (GB/s) of one GPU kernel timing, memoized. This is the
    /// primitive under every sweep, Table 1 and autotune item; its key is
    /// the *resolved* region geometry, so the same point reached through
    /// different requests hits the cache.
    pub fn gpu_point(
        &self,
        region: &TargetRegion,
        m: u64,
        elem: DType,
        acc: DType,
        supply: Option<Bandwidth>,
    ) -> Result<f64> {
        let key = WorkItem::Gpu {
            region: *region,
            m,
            elem,
            acc,
            supply_bits: supply.map(|b| b.as_gbps().to_bits()),
        };
        self.cached(key, || {
            Ok(self
                .rt
                .time_target_reduce(region, m, elem, acc, supply)?
                .effective_bw
                .as_gbps())
        })
    }

    /// Bandwidth (GB/s) of one descriptor-timed workload kernel point,
    /// memoized under the same point cache as the reduction GPU points —
    /// the workload kind rides in the key, so a dot and a scan at the
    /// same geometry never alias.
    pub fn kernel_point(
        &self,
        kind: WorkloadKind,
        region: &TargetRegion,
        m: u64,
        elem: DType,
        acc: DType,
    ) -> Result<f64> {
        let key = WorkItem::Kernel {
            kind,
            region: *region,
            m,
            elem,
            acc,
        };
        self.cached(key, || {
            let desc = KernelDescriptor::for_kind(kind, elem, acc);
            Ok(self
                .rt
                .time_target_kernel(region, m, &desc, None)?
                .effective_bw
                .as_gbps())
        })
    }

    /// Assemble one workload request's result from the warm point cache:
    /// the teams sweep (pure hits after the plan's fan stage), the CPU
    /// roofline over the same bytes, the simulated first-touch placement
    /// and the functional checksum.
    pub(crate) fn workload_result(
        &self,
        kind: WorkloadKind,
        case: Case,
        m: u64,
    ) -> Result<WorkloadResult> {
        let (elem, acc) = (case.elem(), case.acc());
        let mut points = Vec::with_capacity(WORKLOAD_TEAMS_AXIS.len());
        let (mut best_teams, mut best_gbps) = (0u64, f64::NEG_INFINITY);
        for &teams in &WORKLOAD_TEAMS_AXIS {
            let region = TargetRegion::optimized(teams, case.v_optimized());
            let gbps = self.kernel_point(kind, &region, m, elem, acc)?;
            if gbps > best_gbps {
                best_gbps = gbps;
                best_teams = teams;
            }
            points.push(WorkloadPoint { teams, gbps });
        }
        let cpu_gbps = kernels::cpu_workload_gbps(&self.rt, kind, case, m);
        let desc = KernelDescriptor::for_kind(kind, elem, acc);
        let mut um = ghr_mem::UnifiedMemory::new(&self.machine);
        let placement =
            kernels::first_touch_placement(&mut um, desc.input_bytes(m), best_gbps, cpu_gbps);
        let checksum = kernels::functional_checksum(kind, case);
        Ok(WorkloadResult {
            kind,
            case,
            m,
            points,
            best_teams,
            best_gbps,
            cpu_gbps,
            placement,
            checksum,
        })
    }

    /// The paper's bandwidth metric for a spec at the paper's scale
    /// (memoized equivalent of [`ReductionSpec::gbps_paper`]).
    pub fn spec_gbps_paper(&self, spec: &ReductionSpec) -> Result<f64> {
        self.gpu_point(
            &spec.region(),
            spec.case.m_paper(),
            spec.case.elem(),
            spec.case.acc(),
            None,
        )
    }

    /// One point of a Fig. 1 sweep (memoized like any other GPU point).
    fn sweep_point(&self, sweep: &GpuSweep, teams: u64, v: u32) -> Result<f64> {
        let region = TargetRegion::optimized(teams, v).with_thread_limit(sweep.thread_limit);
        self.gpu_point(&region, sweep.m, sweep.case.elem(), sweep.case.acc(), None)
    }

    /// One co-execution series, memoized, in whatever granularity its
    /// allocation site dictates (see the module docs). An A1 series is
    /// stateful across `p` and evaluated whole; an A2 series is stitched
    /// from its independently cached per-`p` points — when the executor
    /// has already fanned those points, this is pure cache traffic.
    pub(crate) fn corun_series(&self, config: &CorunConfig) -> Result<Arc<CorunSeries>> {
        let mode = self.response_cache_mode();
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = self.series.probe(config, mode) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(s);
        }
        let s = match config.alloc {
            AllocSite::A1 => {
                // An A1 series is one atomic work item: take its stripe so
                // concurrent requests evaluate it once. (The A2 arm below
                // takes no stripe — its points each take their own inside
                // `corun_point_a2`, and holding a series stripe across
                // those would nest stripe acquisitions.)
                let item = WorkItem::CorunSeries(*config);
                let stripe = self.eval_stripe(&item);
                if let Some(s) = self.series.probe(config, mode) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(s);
                }
                let skey = format!("{item:?}");
                let s = if let Some(points) = self.store_get(&skey, store::decode_corun_points) {
                    Arc::new(CorunSeries {
                        config: *config,
                        points,
                    })
                } else {
                    let s = Arc::new(run_corun(&self.machine, config)?);
                    self.evaluated.fetch_add(1, Ordering::Relaxed);
                    self.store_put(skey, store::encode_corun_points(&s.points));
                    s
                };
                self.series.publish(*config, Arc::clone(&s));
                drop(stripe);
                return Ok(s);
            }
            AllocSite::A2 => {
                let points = (0..=config.p_steps)
                    .map(|i| self.corun_point_a2(config, i))
                    .collect::<Result<Vec<_>>>()?;
                Arc::new(CorunSeries {
                    config: *config,
                    points,
                })
            }
        };
        // Racing A2 assemblies may both reach this publish; the log's
        // first-write-wins dedup keeps it a single record (the bodies
        // are deterministic and identical).
        self.series.publish(*config, Arc::clone(&s));
        Ok(s)
    }

    /// One `p` point of an A2 co-run series, memoized individually —
    /// byte-identical to the corresponding point of the sequential
    /// [`run_corun`] loop (each A2 iteration re-allocates, so no state
    /// crosses `p`; see [`run_corun_point`]).
    fn corun_point_a2(&self, config: &CorunConfig, i: u32) -> Result<CorunPoint> {
        let mode = self.response_cache_mode();
        let key = (*config, i);
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = self.corun_pts.probe(&key, mode) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(p);
        }
        let item = WorkItem::CorunPoint(*config, i);
        let stripe = self.eval_stripe(&item);
        if let Some(p) = self.corun_pts.probe(&key, mode) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(p);
        }
        let skey = format!("{item:?}");
        if let Some(p) = self.store_get(&skey, store::decode_corun_point) {
            self.corun_pts.publish(key, p);
            return Ok(p);
        }
        let p = run_corun_point(&self.machine, config, i)?;
        self.evaluated.fetch_add(1, Ordering::Relaxed);
        self.store_put(skey, store::encode_corun_point(&p));
        self.corun_pts.publish(key, p);
        drop(stripe);
        Ok(p)
    }

    /// One what-if point: the baseline code under a runtime scenario, or
    /// (`scenario == None`) the optimized source-level-V reference.
    fn whatif_point(&self, scenario: Option<RuntimeScenario>, case: Case) -> Result<f64> {
        let key = WorkItem::WhatIf { scenario, case };
        self.cached(key, || {
            let gbps = match scenario {
                Some(sc) => {
                    let model = whatif::model_for(&self.machine, sc);
                    let launch = whatif::baseline_launch(&self.machine, case, sc);
                    model.reduce(&launch)?.effective_bw.as_gbps()
                }
                None => {
                    let model = GpuModel::new(self.machine.gpu.clone());
                    let launch = ghr_gpusim::calibrate::optimized_launch(match case {
                        Case::C1 => 1,
                        Case::C2 => 2,
                        Case::C3 => 3,
                        Case::C4 => 4,
                    });
                    model.reduce(&launch)?.effective_bw.as_gbps()
                }
            };
            Ok(gbps)
        })
    }

    // -----------------------------------------------------------------
    // Refinement and assembly (the executor's read-back path)
    // -----------------------------------------------------------------

    /// The refined sweep's adaptive follow-up: given the coarse largest-`V`
    /// pass (already in cache after the plan's coarse stage), binary-search
    /// each in-band teams column for the smallest `V` still inside the
    /// 0.1% hysteresis band of [`SweepResult::best`].
    ///
    /// Exploits one model property, pinned by the exhaustive sweep tests
    /// (`bandwidth_monotone_in_v_at_fixed_teams`): **at a fixed teams
    /// value, bandwidth is non-decreasing in `V`** — a larger `V` only
    /// widens each team's strided slice, it never adds launch overhead.
    /// Nothing is assumed about the shape along the teams axis (at small
    /// element counts the series rise and then *fall* as teams outgrow the
    /// work, so a plateau at the largest teams value cannot be assumed).
    /// By column monotonicity the largest-`V` series dominates every
    /// column, so its maximum is the grid's true maximum, and only teams
    /// values reaching its band can host any in-band point; each of those
    /// columns is sorted, so ≤ log2(|vs|) probes find its minimum. The
    /// lexicographically smallest `(V, teams)` among those column minima
    /// is exactly the point the exhaustive sweep's `best()` returns.
    ///
    /// The returned result holds only the evaluated points (reported via
    /// [`SweepResult::coverage`] and the engine's `sweep_evaluated` /
    /// `sweep_skipped` counters), and its `best()` is the same point —
    /// bit-identical bandwidth — as the exhaustive sweep's. Falls back to
    /// the exhaustive grid when the space is degenerate or too small for
    /// refinement to pay for itself ([`refine_axes`] — the same predicate
    /// the planner lowers with, so plan and execution always agree).
    pub(crate) fn refine_search(&self, sweep: &GpuSweep) -> Result<SweepResult> {
        let Some((vs_sorted, v_max)) = refine_axes(sweep) else {
            return self.assemble_sweep_exhaustive(sweep);
        };

        // 1. Coarse pass: the dominating largest-V series, whole axis
        // (cache hits when the plan's coarse stage ran first).
        let mut evaluated: Vec<SweepPoint> = Vec::with_capacity(sweep.teams_axis.len() + 8);
        let mut max = f64::NEG_INFINITY;
        for &t in &sweep.teams_axis {
            let gbps = self.sweep_point(sweep, t, v_max)?;
            max = max.max(gbps);
            evaluated.push(SweepPoint {
                teams_axis: t,
                v: v_max,
                gbps,
            });
        }
        let band = max * (1.0 - 1e-3);

        // 2. Fine pass: per in-band teams value, binary-search the
        // smallest in-band V. Invariant: vs_sorted[hi] is in band,
        // everything below vs_sorted[lo] is not.
        let in_band_teams: Vec<u64> = evaluated
            .iter()
            .filter(|p| p.gbps >= band)
            .map(|p| p.teams_axis)
            .collect();
        for t in in_band_teams {
            let (mut lo, mut hi) = (0usize, vs_sorted.len() - 1);
            while lo < hi {
                let mid = (lo + hi) / 2;
                let gbps = self.sweep_point(sweep, t, vs_sorted[mid])?;
                evaluated.push(SweepPoint {
                    teams_axis: t,
                    v: vs_sorted[mid],
                    gbps,
                });
                if gbps >= band {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
        }

        // Deterministic (v-major, teams-minor) order, like the full grid.
        evaluated.sort_by_key(|p| (p.v, p.teams_axis));
        evaluated.dedup_by_key(|p| (p.v, p.teams_axis));
        self.sweep_evaluated
            .fetch_add(evaluated.len() as u64, Ordering::Relaxed);
        self.sweep_skipped.fetch_add(
            sweep.grid_size().saturating_sub(evaluated.len()) as u64,
            Ordering::Relaxed,
        );
        Ok(SweepResult {
            sweep: sweep.clone(),
            points: evaluated,
            mode: SweepMode::Refined,
        })
    }

    /// Assemble the full (v-major, teams-minor) grid from the point cache
    /// — pure hits after the plan's grid stage ran.
    fn assemble_sweep_exhaustive(&self, sweep: &GpuSweep) -> Result<SweepResult> {
        let mut points = Vec::with_capacity(sweep.grid_size());
        for &v in &sweep.vs {
            for &teams in &sweep.teams_axis {
                points.push(SweepPoint {
                    teams_axis: teams,
                    v,
                    gbps: self.sweep_point(sweep, teams, v)?,
                });
            }
        }
        Ok(SweepResult {
            sweep: sweep.clone(),
            points,
            mode: SweepMode::Exhaustive,
        })
    }

    /// Assemble the typed response for one request from the warm caches.
    /// `refined` holds the adaptive stages' results keyed by their sweep
    /// (an adaptive search cannot be re-read from the point cache alone —
    /// *which* points it probed is part of the result).
    pub(crate) fn assemble(
        &self,
        request: &Request,
        refined: &HashMap<GpuSweep, SweepResult>,
    ) -> Result<Response> {
        match request {
            Request::Sweep { sweep, mode } => {
                let result = match mode {
                    SweepMode::Exhaustive => self.assemble_sweep_exhaustive(sweep)?,
                    SweepMode::Refined => match refined.get(sweep) {
                        Some(r) => r.clone(),
                        // Degenerate space: the planner lowered the full
                        // grid and refine_search falls back to it too.
                        None => self.refine_search(sweep)?,
                    },
                };
                Ok(Response::Sweep(result))
            }
            Request::Table1 => {
                let peak_gbps = self.machine.gpu.hbm_peak_bw.as_gbps();
                let mut rows = Vec::with_capacity(4);
                for case in Case::ALL {
                    let base_gbps = self.spec_gbps_paper(&ReductionSpec::baseline(case))?;
                    let opt_gbps = self.spec_gbps_paper(&ReductionSpec::optimized_paper(case))?;
                    rows.push(Table1Row {
                        case,
                        base_gbps,
                        opt_gbps,
                        speedup: opt_gbps / base_gbps,
                        eff_base: base_gbps / peak_gbps,
                        eff_opt: opt_gbps / peak_gbps,
                    });
                }
                Ok(Response::Table1(Table1 { peak_gbps, rows }))
            }
            Request::Corun { configs } => Ok(Response::Corun(
                configs
                    .iter()
                    .map(|cfg| self.corun_series(cfg))
                    .collect::<Result<Vec<_>>>()?,
            )),
            Request::Study { m, n_reps } => {
                let mut out = CorunStudy {
                    a1_base: Vec::with_capacity(4),
                    a1_opt: Vec::with_capacity(4),
                    a2_base: Vec::with_capacity(4),
                    a2_opt: Vec::with_capacity(4),
                };
                for (i, cfg) in study::study_configs(*m, *n_reps).iter().enumerate() {
                    let s = (*self.corun_series(cfg)?).clone();
                    match i % 4 {
                        0 => out.a1_base.push(s),
                        1 => out.a1_opt.push(s),
                        2 => out.a2_base.push(s),
                        _ => out.a2_opt.push(s),
                    }
                }
                Ok(Response::Study(out))
            }
            Request::WhatIf => {
                let mut rows = Vec::with_capacity(whatif::SCENARIOS.len());
                for scenario in whatif::SCENARIOS {
                    let mut gbps = [0.0; 4];
                    for (g, case) in gbps.iter_mut().zip(Case::ALL) {
                        *g = self.whatif_point(Some(scenario), case)?;
                    }
                    rows.push(WhatIfRow { scenario, gbps });
                }
                let mut optimized_gbps = [0.0; 4];
                for (g, case) in optimized_gbps.iter_mut().zip(Case::ALL) {
                    *g = self.whatif_point(None, case)?;
                }
                Ok(Response::WhatIf(WhatIfStudy {
                    rows,
                    optimized_gbps,
                }))
            }
            Request::Autotune { cases, m } => {
                let mut out = Vec::with_capacity(cases.len());
                for &case in cases {
                    let sweep = autotune_sweep(case, *m);
                    let result = match refined.get(&sweep) {
                        Some(r) => r.clone(),
                        None => self.refine_search(&sweep)?,
                    };
                    let best = result.best();
                    out.push(TunedConfig {
                        case,
                        teams_axis: best.teams_axis,
                        v: best.v,
                        gbps: best.gbps,
                    });
                }
                Ok(Response::Autotune(out))
            }
            Request::Dot { .. } | Request::Scan { .. } | Request::Gemv { .. } => {
                let (kind, case, m) = request
                    .workload_parts()
                    .expect("workload request has workload parts");
                Ok(Response::Workload(self.workload_result(kind, case, m)?))
            }
        }
    }

    // -----------------------------------------------------------------
    // Typed shorthands (each builds and runs the equivalent request)
    // -----------------------------------------------------------------

    /// Run a Fig. 1 sweep over the full grid, fanned across the pool.
    /// Point order and values are bit-identical to [`GpuSweep::run`].
    pub fn sweep(&self, sweep: &GpuSweep) -> Result<SweepResult> {
        Ok(self
            .run(&Request::Sweep {
                sweep: sweep.clone(),
                mode: SweepMode::Exhaustive,
            })?
            .sweep()?
            .clone())
    }

    /// Run a sweep in the requested [`SweepMode`].
    pub fn sweep_mode(&self, sweep: &GpuSweep, mode: SweepMode) -> Result<SweepResult> {
        Ok(self
            .run(&Request::Sweep {
                sweep: sweep.clone(),
                mode,
            })?
            .sweep()?
            .clone())
    }

    /// Coarse-to-fine sweep: the same [`SweepResult::best`] as the
    /// exhaustive grid while evaluating only a fraction of it (see
    /// [`Engine::refine_search`] for the algorithm and its invariant).
    pub fn sweep_refined(&self, sweep: &GpuSweep) -> Result<SweepResult> {
        self.sweep_mode(sweep, SweepMode::Refined)
    }

    /// Regenerate Table 1 with the eight kernel timings fanned across the
    /// pool (memoized equivalent of [`crate::table1::table1`]).
    pub fn table1(&self) -> Result<Table1> {
        Ok(self.run(&Request::Table1)?.table1()?.clone())
    }

    /// Autotune one case over the paper's space at the paper's scale.
    pub fn autotune(&self, case: Case) -> Result<TunedConfig> {
        self.autotune_scaled(case, case.m_paper())
    }

    /// Autotune at a reduced element count (for tests). The underlying
    /// sweep runs in [`SweepMode::Refined`] — it returns the same best
    /// point as the full grid while probing only a fraction of it.
    pub fn autotune_scaled(&self, case: Case, m: u64) -> Result<TunedConfig> {
        let tuned = self
            .run(&Request::Autotune {
                cases: vec![case],
                m: Some(m),
            })?
            .autotune()?
            .to_vec();
        tuned
            .into_iter()
            .next()
            .ok_or_else(|| GhrError::internal("autotune produced no config".to_string()))
    }

    /// Autotune all four cases in one request.
    pub fn autotune_all(&self) -> Result<Vec<TunedConfig>> {
        Ok(self
            .run(&Request::Autotune {
                cases: Case::ALL.to_vec(),
                m: None,
            })?
            .autotune()?
            .to_vec())
    }

    /// One co-execution series, memoized (see the module docs for the
    /// A1/A2 granularity split).
    pub fn corun(&self, config: &CorunConfig) -> Result<Arc<CorunSeries>> {
        let response = self.run(&Request::Corun {
            configs: vec![*config],
        })?;
        let series = response.corun()?;
        series
            .first()
            .cloned()
            .ok_or_else(|| GhrError::internal("corun produced no series".to_string()))
    }

    /// Evaluate several co-run series in one request; results come back
    /// in config order.
    pub fn corun_many(&self, configs: &[CorunConfig]) -> Result<Vec<Arc<CorunSeries>>> {
        if configs.is_empty() {
            return Ok(Vec::new());
        }
        Ok(self
            .run(&Request::Corun {
                configs: configs.to_vec(),
            })?
            .corun()?
            .to_vec())
    }

    /// The full Section IV study at the paper's scale.
    pub fn full_study(&self) -> Result<CorunStudy> {
        self.full_study_scaled(None, None)
    }

    /// The full study with optional scaling — the parallel, memoized
    /// equivalent of [`crate::study::run_full_study_scaled`], assembling
    /// buckets in the same order.
    pub fn full_study_scaled(&self, m: Option<u64>, n_reps: Option<u32>) -> Result<CorunStudy> {
        Ok(self.run(&Request::Study { m, n_reps })?.study()?.clone())
    }

    /// The what-if study (runtime-side recovery of the baseline deficit),
    /// its 20 points fanned across the pool — the parallel, memoized
    /// equivalent of [`crate::whatif::whatif_study`].
    pub fn whatif(&self) -> Result<WhatIfStudy> {
        Ok(self.run(&Request::WhatIf)?.whatif()?.clone())
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Backstop flush of the persistent store; callers that care about
        // the entry count (or the I/O error) call `flush_store` directly.
        let _ = self.flush_store();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(threads: usize) -> Engine {
        Engine::new(MachineConfig::gh200(), threads)
    }

    #[test]
    fn fingerprint_distinguishes_machines() {
        let a = MachineConfig::gh200();
        let mut b = MachineConfig::gh200();
        b.cpu.cores += 1;
        assert_ne!(machine_fingerprint(&a), machine_fingerprint(&b));
        assert_eq!(machine_fingerprint(&a), machine_fingerprint(&a.clone()));
    }

    #[test]
    fn engine_with_zero_threads_resolves_a_default() {
        let e = engine(0);
        assert!(e.threads() >= 1);
    }

    #[test]
    fn gpu_point_matches_direct_runtime_call() {
        let e = engine(1);
        let region = TargetRegion::optimized(65536, 4);
        let direct = e
            .rt()
            .time_target_reduce(&region, 1 << 20, DType::I32, DType::I32, None)
            .unwrap()
            .effective_bw
            .as_gbps();
        let cached = e
            .gpu_point(&region, 1 << 20, DType::I32, DType::I32, None)
            .unwrap();
        assert_eq!(direct.to_bits(), cached.to_bits());
    }

    #[test]
    fn second_lookup_is_a_hit_not_an_evaluation() {
        let e = engine(1);
        let region = TargetRegion::baseline();
        for _ in 0..3 {
            e.gpu_point(&region, 1 << 20, DType::F32, DType::F32, None)
                .unwrap();
        }
        let s = e.stats();
        assert_eq!(s.evaluated, 1, "{s:?}");
        assert_eq!(s.hits, 2, "{s:?}");
        assert_eq!(s.lookups, 3, "{s:?}");
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fresh_engine_rates_are_zero_not_nan() {
        let s = engine(1).stats();
        assert_eq!(s.lookups, 0);
        assert_eq!(s.requests, 0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.response_hit_rate(), 0.0);
        assert!(!s.hit_rate().is_nan());
        assert!(!s.response_hit_rate().is_nan());
    }

    #[test]
    fn supply_cap_is_part_of_the_key() {
        let e = engine(1);
        let region = TargetRegion::optimized(65536, 4);
        let local = e
            .gpu_point(&region, 1 << 22, DType::I32, DType::I32, None)
            .unwrap();
        let capped = e
            .gpu_point(
                &region,
                1 << 22,
                DType::I32,
                DType::I32,
                Some(Bandwidth::gbps(380.0)),
            )
            .unwrap();
        assert!(capped < local);
        assert_eq!(e.stats().evaluated, 2);
    }

    #[test]
    fn refined_sweep_finds_the_exhaustive_best() {
        let e = engine(2);
        for case in Case::ALL {
            let sweep = GpuSweep::paper_scaled(case, 1 << 22);
            let full = e.sweep(&sweep).unwrap();
            let refined = e.sweep_refined(&sweep).unwrap();
            assert_eq!(refined.mode, SweepMode::Refined);
            let (fb, rb) = (full.best(), refined.best());
            assert_eq!(
                (fb.teams_axis, fb.v),
                (rb.teams_axis, rb.v),
                "{case}: exhaustive {fb:?} vs refined {rb:?}"
            );
            assert_eq!(fb.gbps.to_bits(), rb.gbps.to_bits(), "{case}");
            let (eval, grid) = refined.coverage();
            assert!(eval * 2 <= grid, "{case}: {eval}/{grid} evaluated");
        }
        let s = e.stats();
        assert!(s.sweep_evaluated > 0);
        assert!(s.sweep_skipped > 0);
    }

    #[test]
    fn sweep_mode_dispatches() {
        let e = engine(1);
        let sweep = GpuSweep::paper_scaled(Case::C1, 1 << 20);
        let a = e.sweep_mode(&sweep, SweepMode::Exhaustive).unwrap();
        let b = e.sweep_mode(&sweep, SweepMode::Refined).unwrap();
        assert_eq!(a.mode, SweepMode::Exhaustive);
        assert_eq!(b.mode, SweepMode::Refined);
        assert!(b.points.len() < a.points.len());
    }

    #[test]
    fn repeated_request_is_a_response_hit_with_no_new_work() {
        let e = engine(1);
        let first = e.table1().unwrap();
        let after_first = e.stats();
        assert_eq!(after_first.evaluated, 8, "{after_first:?}");
        let second = e.table1().unwrap();
        let s = e.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.response_hits, 1, "{s:?}");
        assert_eq!(
            s.lookups, after_first.lookups,
            "a response hit must not re-walk the point caches"
        );
        assert_eq!(s.evaluated, 8);
        assert!((s.response_hit_rate() - 0.5).abs() < 1e-12);
        for (a, b) in first.rows.iter().zip(&second.rows) {
            assert_eq!(a.base_gbps.to_bits(), b.base_gbps.to_bits());
            assert_eq!(a.opt_gbps.to_bits(), b.opt_gbps.to_bits());
        }
    }

    #[test]
    fn run_records_stage_timings() {
        let e = engine(2);
        e.table1().unwrap();
        let timings = e.stage_timings();
        assert_eq!(timings.len(), 2, "{timings:?}");
        assert!(timings[0].name.contains("kernels"), "{timings:?}");
        assert_eq!(timings[0].evaluated, 8);
        assert_eq!(timings[1].name, "assemble");
        assert_eq!(timings[1].evaluated, 0, "assembly must be pure hits");
        // A response hit adds no stages.
        e.table1().unwrap();
        assert_eq!(e.stage_timings().len(), 2);
    }

    #[test]
    fn a2_series_assembled_from_points_matches_sequential_run() {
        let cfg = CorunConfig::paper(
            Case::C1,
            crate::reduction::KernelKind::Optimized {
                teams_axis: 65536,
                v: 4,
            },
            AllocSite::A2,
        );
        let reference = run_corun(&MachineConfig::gh200(), &cfg).unwrap();
        for threads in [1, 8] {
            let s = engine(threads).corun(&cfg).unwrap();
            assert_eq!(s.points.len(), reference.points.len(), "{threads} threads");
            for (a, b) in s.points.iter().zip(&reference.points) {
                assert_eq!(a, b, "{threads} threads");
            }
        }
    }

    #[test]
    fn a2_series_is_cached_as_points_and_as_a_series() {
        let e = engine(1);
        let cfg = CorunConfig::paper(
            Case::C2,
            crate::reduction::KernelKind::Baseline,
            AllocSite::A2,
        );
        e.corun(&cfg).unwrap();
        let s = e.stats();
        assert_eq!(s.evaluated, 11, "one evaluation per p point: {s:?}");
        // 11 fanned point evaluations + the assembly's series probe and
        // its 11 point re-reads (all hits).
        assert_eq!(s.lookups, 23, "{s:?}");
        assert_eq!(s.hits, 11, "{s:?}");
        e.corun(&cfg).unwrap();
        let s = e.stats();
        assert_eq!(s.evaluated, 11, "{s:?}");
        assert_eq!(s.response_hits, 1, "repeat is a whole-response hit: {s:?}");
        assert_eq!(s.lookups, 23, "{s:?}");
    }

    #[test]
    fn whatif_matches_serial_study_bitwise() {
        let serial = whatif::whatif_study(&MachineConfig::gh200()).unwrap();
        for threads in [1, 4] {
            let ours = engine(threads).whatif().unwrap();
            assert_eq!(ours.rows.len(), serial.rows.len());
            for (a, b) in ours.rows.iter().zip(&serial.rows) {
                assert_eq!(a.scenario, b.scenario);
                for (x, y) in a.gbps.iter().zip(b.gbps) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            for (x, y) in ours.optimized_gbps.iter().zip(serial.optimized_gbps) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn workload_requests_round_trip_with_a_warm_second_pass() {
        let e = engine(2);
        for req in [
            Request::dot(Case::C1),
            Request::scan(Case::C2),
            Request::gemv(Case::C4),
        ] {
            let cold = e.respond(&req).unwrap();
            assert_eq!(cold.source, ResponseSource::Fresh, "{req:?}");
            assert_eq!(cold.evals, 7, "one evaluation per teams value: {req:?}");
            let w = cold.response.workload().unwrap();
            assert_eq!(w.points.len(), 7);
            assert!(w.best_gbps > 0.0, "{w:?}");
            assert!(w.cpu_gbps > 0.0, "{w:?}");
            let warm = e.respond(&req).unwrap();
            assert_eq!(warm.source, ResponseSource::ResponseCache, "{req:?}");
            assert_eq!(warm.evals, 0, "warm workload must re-plan nothing");
        }
        for t in e.stage_timings().iter().filter(|t| t.name == "assemble") {
            assert_eq!(t.evaluated, 0, "workload assembly must be pure hits");
        }
    }

    #[test]
    fn workload_kinds_do_not_alias_in_the_point_cache() {
        let e = engine(1);
        let region = TargetRegion::optimized(65536, 4);
        let m = Case::C3.m_paper();
        e.kernel_point(WorkloadKind::Dot, &region, m, DType::F32, DType::F32)
            .unwrap();
        e.kernel_point(WorkloadKind::Scan, &region, m, DType::F32, DType::F32)
            .unwrap();
        // Same region, m and dtypes — if the kind were missing from the
        // cache key the second call would be a hit and evals would be 1.
        assert_eq!(e.stats().evaluated, 2);
        e.kernel_point(WorkloadKind::Dot, &region, m, DType::F32, DType::F32)
            .unwrap();
        assert_eq!(e.stats().evaluated, 2, "repeat point must be a hit");
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
    }

    #[test]
    fn concurrent_identical_requests_coalesce() {
        let e = engine(2);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| e.run(&Request::Table1).unwrap());
            }
        });
        let st = e.stats();
        assert_eq!(st.requests, 4, "{st:?}");
        // One leader evaluates Table 1's eight kernels; the other three
        // arrivals either coalesce onto the in-flight evaluation or hit
        // the response cache, depending on timing — never re-evaluate.
        assert_eq!(st.evaluated, 8, "{st:?}");
        assert_eq!(st.response_hits + st.coalesced, 3, "{st:?}");
    }

    #[test]
    fn respond_reports_the_response_source() {
        let e = engine(1);
        let cold = e.respond(&Request::Table1).unwrap();
        assert_eq!(cold.source, ResponseSource::Fresh);
        assert_eq!(cold.evals, 8, "{cold:?}");
        let warm = e.respond(&Request::Table1).unwrap();
        assert_eq!(warm.source, ResponseSource::ResponseCache);
        assert_eq!(warm.evals, 0, "{warm:?}");
        assert!(Arc::ptr_eq(&warm.response, &cold.response));
    }
}
