//! The parallel, memoizing experiment engine.
//!
//! Every result the paper reports is a grid of *independent* model
//! evaluations — Fig. 1 is a 10×6 `(teams, V)` sweep per case, Table 1 is
//! eight kernel timings, the Section IV study is sixteen co-run series —
//! and many points recur verbatim across drivers (the paper's optimized
//! configurations appear in the Fig. 1 sweeps, Table 1, `autotune`, and
//! the co-run GPU-only leg). The [`Engine`] exploits both properties:
//!
//! * a **sharded, hash-keyed result cache** keyed by machine fingerprint ×
//!   resolved [`TargetRegion`] geometry × element count/types × supply
//!   constraint, so identical points are evaluated once per process no
//!   matter which driver asks;
//! * a **parallel grid driver** that fans grid points across the
//!   [`ghr_parallel::ThreadPool`] and reassembles results in deterministic
//!   index order — tables are bit-identical to the serial path at any
//!   thread count.
//!
//! Cache keys are *resolved geometry*, not driver-level names: Table 1's
//! optimized row and the Fig. 1 sweep both key to
//! `TargetRegion::optimized(65536, v)` at the case's paper scale, so
//! `ghr all` pays for each unique kernel timing exactly once.
//!
//! A co-run series ([`CorunConfig`]) has two granularities. Its A1 variant
//! is *stateful* across the `p` loop (the allocation survives and pages
//! stay where earlier iterations migrated them), so the series — not the
//! `p` point — is its smallest independently evaluable unit and it is
//! cached whole. An **A2** series frees and re-allocates per `p`
//! iteration, so each of its eleven points is independent: the engine fans
//! them across the pool as individual cacheable work items and reassembles
//! the series in `p` order ([`crate::corun::run_corun_point`]).
//!
//! When a [`PersistentStore`] is attached ([`Engine::with_store_dir`]),
//! every memoized point also round-trips through a versioned on-disk store
//! keyed by the same fingerprint × geometry, so a second `ghr all` in
//! another process answers from disk instead of re-evaluating.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::autotune::TunedConfig;
use crate::case::Case;
use crate::corun::{run_corun, run_corun_point, AllocSite, CorunConfig, CorunPoint, CorunSeries};
use crate::reduction::ReductionSpec;
use crate::store::{self, PersistentStore};
use crate::study::{self, CorunStudy};
use crate::sweep::{GpuSweep, SweepMode, SweepPoint, SweepResult};
use crate::table1::{Table1, Table1Row};
use crate::whatif::{self, RuntimeScenario, WhatIfRow, WhatIfStudy};
use ghr_gpusim::GpuModel;
use ghr_machine::MachineConfig;
use ghr_omp::{OmpRuntime, TargetRegion};
use ghr_parallel::ThreadPool;
use ghr_types::{Bandwidth, DType, GhrError, Result};

/// FNV-1a, used for the machine fingerprint and for shard selection.
/// Deterministic across processes and platforms (unlike the std
/// `RandomState`), which keeps shard occupancy reproducible.
#[derive(Debug, Clone)]
pub struct Fnv1aHasher(u64);

impl Default for Fnv1aHasher {
    fn default() -> Self {
        Fnv1aHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1aHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

type BuildFnv = BuildHasherDefault<Fnv1aHasher>;

/// Fingerprint of a machine description (FNV-1a over its debug render):
/// results cached under one machine are never served for another.
pub fn machine_fingerprint(machine: &MachineConfig) -> u64 {
    let mut h = Fnv1aHasher::default();
    h.write(format!("{machine:?}").as_bytes());
    h.finish()
}

/// A cacheable scalar evaluation (one grid point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PointKey {
    /// A GPU kernel timing: the resolved region geometry plus everything
    /// else that determines the modelled bandwidth.
    Gpu {
        fingerprint: u64,
        region: TargetRegion,
        m: u64,
        elem: DType,
        acc: DType,
        /// Bit pattern of the supply cap in GB/s (`None` = local HBM).
        supply_bits: Option<u64>,
    },
    /// A what-if point: the baseline code under a runtime-side scenario
    /// (`None` = the optimized source-level-V reference row).
    WhatIf {
        fingerprint: u64,
        scenario: Option<RuntimeScenario>,
        case: Case,
    },
}

const SHARDS: usize = 16;

/// A sharded hash map: N independent mutexes instead of one, so parallel
/// grid evaluations rarely contend on the cache.
struct ShardedCache<K, V> {
    shards: Vec<Mutex<HashMap<K, V, BuildFnv>>>,
}

impl<K: Eq + Hash, V: Clone> ShardedCache<K, V> {
    fn new() -> Self {
        ShardedCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(HashMap::default()))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V, BuildFnv>> {
        let mut h = Fnv1aHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() % SHARDS as u64) as usize]
    }

    fn get(&self, key: &K) -> Option<V> {
        self.shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned()
    }

    fn insert(&self, key: K, value: V) {
        self.shard(&key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, value);
    }
}

/// Counters the `--stats` flag reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStats {
    /// Worker threads the engine fans grids across (1 = serial).
    pub threads: usize,
    /// Cache lookups performed.
    pub lookups: u64,
    /// Lookups answered from the in-process cache.
    pub hits: u64,
    /// Points actually evaluated (an A1 co-run series counts as one point
    /// — it is its atomic unit of evaluation; each A2 `p` point counts
    /// individually; see the module docs).
    pub evaluated: u64,
    /// Entries the persistent store held when it was opened (0 when no
    /// store is attached).
    pub persistent_loaded: u64,
    /// In-process misses answered from the persistent store.
    pub persistent_hits: u64,
    /// Lookups that missed both caches and had to evaluate (only counted
    /// while a store is attached).
    pub persistent_misses: u64,
    /// Freshly evaluated results written to the persistent store.
    pub persistent_stored: u64,
    /// Grid points refined sweeps actually evaluated.
    pub sweep_evaluated: u64,
    /// Grid points refined sweeps skipped (full grid minus evaluated) —
    /// reported so an adaptively truncated grid is never silent.
    pub sweep_skipped: u64,
}

impl EngineStats {
    /// Fraction of lookups answered from either cache (in-process or
    /// persistent) — i.e. not freshly evaluated.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            (self.hits + self.persistent_hits) as f64 / self.lookups as f64
        }
    }
}

/// Number of threads to use when none is requested explicitly: the
/// `GHR_THREADS` environment variable if set and positive, otherwise the
/// host's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(s) = std::env::var("GHR_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The evaluation engine: one machine, one worker pool, one result cache.
///
/// Construct it once per process (or per `ghr` invocation) and route every
/// driver through it; repeated and overlapping experiments then share both
/// the pool and the memoized points.
pub struct Engine {
    machine: MachineConfig,
    rt: OmpRuntime,
    fingerprint: u64,
    threads: usize,
    pool: Option<ThreadPool>,
    store: Option<PersistentStore>,
    points: ShardedCache<PointKey, f64>,
    series: ShardedCache<(u64, CorunConfig), Arc<CorunSeries>>,
    corun_pts: ShardedCache<(u64, CorunConfig, u32), CorunPoint>,
    lookups: AtomicU64,
    hits: AtomicU64,
    evaluated: AtomicU64,
    pstore_hits: AtomicU64,
    pstore_misses: AtomicU64,
    pstore_stored: AtomicU64,
    sweep_evaluated: AtomicU64,
    sweep_skipped: AtomicU64,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("fingerprint", &self.fingerprint)
            .field("threads", &self.threads)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Engine {
    /// Build an engine for a machine. `threads == 0` resolves via
    /// [`default_threads`] (`GHR_THREADS`, then available parallelism);
    /// `threads == 1` evaluates every grid serially on the caller's
    /// thread — the reference path the determinism tests compare against.
    pub fn new(machine: MachineConfig, threads: usize) -> Self {
        let threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        let fingerprint = machine_fingerprint(&machine);
        let rt = OmpRuntime::new(machine.clone());
        let pool = (threads > 1).then(|| ThreadPool::new(threads));
        Engine {
            machine,
            rt,
            fingerprint,
            threads,
            pool,
            store: None,
            points: ShardedCache::new(),
            series: ShardedCache::new(),
            corun_pts: ShardedCache::new(),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evaluated: AtomicU64::new(0),
            pstore_hits: AtomicU64::new(0),
            pstore_misses: AtomicU64::new(0),
            pstore_stored: AtomicU64::new(0),
            sweep_evaluated: AtomicU64::new(0),
            sweep_skipped: AtomicU64::new(0),
        }
    }

    /// Attach the persistent result store under `dir` (created on flush if
    /// missing). The engine opens the file matching its machine
    /// fingerprint and the current schema version; a mismatched or corrupt
    /// file loads as empty. Call [`Engine::flush_store`] (or rely on
    /// `Drop`) to write freshly evaluated points back.
    pub fn with_store_dir(mut self, dir: &Path) -> Self {
        self.store = Some(PersistentStore::open(dir, self.fingerprint));
        self
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&PersistentStore> {
        self.store.as_ref()
    }

    /// Flush the persistent store (no-op when none is attached or nothing
    /// is dirty). Returns the number of entries written.
    pub fn flush_store(&self) -> std::io::Result<u64> {
        match &self.store {
            Some(store) => store.flush(),
            None => Ok(0),
        }
    }

    /// The machine this engine evaluates against.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The OpenMP runtime the GPU points go through.
    pub fn rt(&self) -> &OmpRuntime {
        &self.rt
    }

    /// Worker threads grids fan across (1 = serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the engine counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            threads: self.threads,
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            evaluated: self.evaluated.load(Ordering::Relaxed),
            persistent_loaded: self.store.as_ref().map_or(0, |s| s.loaded()),
            persistent_hits: self.pstore_hits.load(Ordering::Relaxed),
            persistent_misses: self.pstore_misses.load(Ordering::Relaxed),
            persistent_stored: self.pstore_stored.load(Ordering::Relaxed),
            sweep_evaluated: self.sweep_evaluated.load(Ordering::Relaxed),
            sweep_skipped: self.sweep_skipped.load(Ordering::Relaxed),
        }
    }

    /// Fan `f` over `items` and return results in item order. Uses the
    /// pool when one exists and the grid has more than one point; the
    /// reassembled vector is identical to the serial map either way. A
    /// worker that panics surfaces as [`GhrError::Internal`] (after every
    /// other job has drained) instead of aborting the whole study.
    fn map_grid<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        match &self.pool {
            Some(pool) if items.len() > 1 => pool.try_parallel_map(items, f).map_err(|payload| {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic payload");
                GhrError::internal(format!("worker panicked: {msg}"))
            }),
            _ => Ok(items.iter().map(f).collect()),
        }
    }

    /// Look up an in-process miss in the persistent store; decode with
    /// `dec`. Counts a persistent hit or miss as a side effect.
    fn store_get<V>(&self, key: &str, dec: impl FnOnce(&str) -> Option<V>) -> Option<V> {
        let store = self.store.as_ref()?;
        match store.get(key).as_deref().and_then(dec) {
            Some(v) => {
                self.pstore_hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.pstore_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record a freshly evaluated result in the persistent store.
    fn store_put(&self, key: String, value: String) {
        if let Some(store) = &self.store {
            store.put(key, value);
            self.pstore_stored.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Memoized scalar evaluation: in-process cache, then the persistent
    /// store, then `eval` (whose result feeds both).
    fn cached(&self, key: PointKey, eval: impl FnOnce() -> Result<f64>) -> Result<f64> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(v) = self.points.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        let skey = format!("{key:?}");
        if let Some(v) = self.store_get(&skey, store::decode_f64) {
            self.points.insert(key, v);
            return Ok(v);
        }
        let v = eval()?;
        self.evaluated.fetch_add(1, Ordering::Relaxed);
        self.store_put(skey, store::encode_f64(v));
        self.points.insert(key, v);
        Ok(v)
    }

    /// Bandwidth (GB/s) of one GPU kernel timing, memoized. This is the
    /// primitive under [`Engine::sweep`], [`Engine::table1`] and
    /// [`Engine::autotune`]; its key is the *resolved* region geometry, so
    /// the same point reached through different drivers hits the cache.
    pub fn gpu_point(
        &self,
        region: &TargetRegion,
        m: u64,
        elem: DType,
        acc: DType,
        supply: Option<Bandwidth>,
    ) -> Result<f64> {
        let key = PointKey::Gpu {
            fingerprint: self.fingerprint,
            region: *region,
            m,
            elem,
            acc,
            supply_bits: supply.map(|b| b.as_gbps().to_bits()),
        };
        self.cached(key, || {
            Ok(self
                .rt
                .time_target_reduce(region, m, elem, acc, supply)?
                .effective_bw
                .as_gbps())
        })
    }

    /// The paper's bandwidth metric for a spec at the paper's scale
    /// (memoized equivalent of [`ReductionSpec::gbps_paper`]).
    pub fn spec_gbps_paper(&self, spec: &ReductionSpec) -> Result<f64> {
        self.gpu_point(
            &spec.region(),
            spec.case.m_paper(),
            spec.case.elem(),
            spec.case.acc(),
            None,
        )
    }

    /// Run a Fig. 1 sweep with the full grid fanned across the pool. Point
    /// order and values are bit-identical to [`GpuSweep::run`].
    pub fn sweep(&self, sweep: &GpuSweep) -> Result<SweepResult> {
        let mut grid = Vec::with_capacity(sweep.grid_size());
        for &v in &sweep.vs {
            for &teams in &sweep.teams_axis {
                grid.push((v, teams));
            }
        }
        let gbps = self.map_grid(&grid, |&(v, teams)| self.sweep_point(sweep, teams, v))?;
        let mut points = Vec::with_capacity(grid.len());
        for (&(v, teams), g) in grid.iter().zip(gbps) {
            points.push(SweepPoint {
                teams_axis: teams,
                v,
                gbps: g?,
            });
        }
        Ok(SweepResult {
            sweep: sweep.clone(),
            points,
            mode: SweepMode::Exhaustive,
        })
    }

    /// One point of a Fig. 1 sweep (memoized like any other GPU point).
    fn sweep_point(&self, sweep: &GpuSweep, teams: u64, v: u32) -> Result<f64> {
        let region = TargetRegion::optimized(teams, v).with_thread_limit(sweep.thread_limit);
        self.gpu_point(&region, sweep.m, sweep.case.elem(), sweep.case.acc(), None)
    }

    /// Run a sweep in the requested [`SweepMode`].
    pub fn sweep_mode(&self, sweep: &GpuSweep, mode: SweepMode) -> Result<SweepResult> {
        match mode {
            SweepMode::Exhaustive => self.sweep(sweep),
            SweepMode::Refined => self.sweep_refined(sweep),
        }
    }

    /// Coarse-to-fine sweep: find the same [`SweepResult::best`] as the
    /// exhaustive grid while evaluating only a fraction of it.
    ///
    /// Exploits one model property, pinned by the exhaustive sweep tests
    /// (`bandwidth_monotone_in_v_at_fixed_teams`): **at a fixed teams
    /// value, bandwidth is non-decreasing in `V`** — a larger `V` only
    /// widens each team's strided slice, it never adds launch overhead.
    /// Nothing is assumed about the shape along the teams axis (at small
    /// element counts the series rise and then *fall* as teams outgrow the
    /// work, so a plateau at the largest teams value cannot be assumed).
    ///
    /// 1. **Coarse pass**: evaluate the largest-`V` series over the whole
    ///    teams axis (fanned across the pool). By column monotonicity it
    ///    dominates every column, so its maximum is the grid's true
    ///    maximum `M`, and only teams values where it reaches the 0.1%
    ///    hysteresis band of [`SweepResult::best`] can host *any* in-band
    ///    point.
    /// 2. **Fine pass**: for each in-band teams value, binary-search the
    ///    smallest `V` still in band (each column is sorted, so
    ///    ≤ log2(|vs|) probes). The lexicographically smallest
    ///    `(V, teams)` among those column minima is exactly the point the
    ///    exhaustive sweep's `best()` returns.
    ///
    /// The returned result holds only the evaluated points (reported via
    /// [`SweepResult::coverage`] and the engine's `sweep_evaluated` /
    /// `sweep_skipped` counters), and its `best()` is the same point —
    /// bit-identical bandwidth — as the exhaustive sweep's. Falls back to
    /// the exhaustive path when the space is degenerate or too small for
    /// refinement to pay for itself.
    pub fn sweep_refined(&self, sweep: &GpuSweep) -> Result<SweepResult> {
        let mut vs_sorted = sweep.vs.clone();
        vs_sorted.sort_unstable();
        vs_sorted.dedup();
        // Worst case: the coarse pass plus one binary search per teams
        // value. If that cannot undercut the full grid (tiny spaces),
        // refinement has nothing to offer.
        let log2_vs = usize::BITS - vs_sorted.len().leading_zeros();
        let worst = sweep.teams_axis.len() * (1 + log2_vs as usize);
        if vs_sorted.len() < 2 || sweep.teams_axis.is_empty() || worst >= sweep.grid_size() {
            return self.sweep(sweep);
        }
        let v_max = *vs_sorted.last().expect("non-empty vs");

        // 1. Coarse pass: the dominating largest-V series, whole axis.
        let coarse = self.map_grid(&sweep.teams_axis, |&t| self.sweep_point(sweep, t, v_max))?;
        let mut evaluated: Vec<SweepPoint> = Vec::with_capacity(sweep.teams_axis.len() + 8);
        let mut max = f64::NEG_INFINITY;
        for (&t, g) in sweep.teams_axis.iter().zip(coarse) {
            let gbps = g?;
            max = max.max(gbps);
            evaluated.push(SweepPoint {
                teams_axis: t,
                v: v_max,
                gbps,
            });
        }
        let band = max * (1.0 - 1e-3);

        // 2. Fine pass: per in-band teams value, binary-search the
        // smallest in-band V. Invariant: vs_sorted[hi] is in band,
        // everything below vs_sorted[lo] is not.
        let in_band_teams: Vec<u64> = evaluated
            .iter()
            .filter(|p| p.gbps >= band)
            .map(|p| p.teams_axis)
            .collect();
        for t in in_band_teams {
            let (mut lo, mut hi) = (0usize, vs_sorted.len() - 1);
            while lo < hi {
                let mid = (lo + hi) / 2;
                let gbps = self.sweep_point(sweep, t, vs_sorted[mid])?;
                evaluated.push(SweepPoint {
                    teams_axis: t,
                    v: vs_sorted[mid],
                    gbps,
                });
                if gbps >= band {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
        }

        // Deterministic (v-major, teams-minor) order, like the full grid.
        evaluated.sort_by_key(|p| (p.v, p.teams_axis));
        evaluated.dedup_by_key(|p| (p.v, p.teams_axis));
        self.sweep_evaluated
            .fetch_add(evaluated.len() as u64, Ordering::Relaxed);
        self.sweep_skipped.fetch_add(
            sweep.grid_size().saturating_sub(evaluated.len()) as u64,
            Ordering::Relaxed,
        );
        Ok(SweepResult {
            sweep: sweep.clone(),
            points: evaluated,
            mode: SweepMode::Refined,
        })
    }

    /// Regenerate Table 1 with the eight kernel timings fanned across the
    /// pool (memoized equivalent of [`crate::table1::table1`]).
    pub fn table1(&self) -> Result<Table1> {
        let peak_gbps = self.machine.gpu.hbm_peak_bw.as_gbps();
        let mut specs = Vec::with_capacity(8);
        for case in Case::ALL {
            specs.push(ReductionSpec::baseline(case));
            specs.push(ReductionSpec::optimized_paper(case));
        }
        let gbps = self.map_grid(&specs, |spec| self.spec_gbps_paper(spec))?;
        let mut gbps = gbps.into_iter();
        let mut next = |what: &str| {
            gbps.next()
                .ok_or_else(|| GhrError::internal(format!("table1 grid lost its {what}")))?
        };
        let mut rows = Vec::with_capacity(4);
        for case in Case::ALL {
            let base_gbps = next("baseline point")?;
            let opt_gbps = next("optimized point")?;
            rows.push(Table1Row {
                case,
                base_gbps,
                opt_gbps,
                speedup: opt_gbps / base_gbps,
                eff_base: base_gbps / peak_gbps,
                eff_opt: opt_gbps / peak_gbps,
            });
        }
        Ok(Table1 { peak_gbps, rows })
    }

    /// Autotune one case over the paper's space at the paper's scale.
    pub fn autotune(&self, case: Case) -> Result<TunedConfig> {
        self.autotune_scaled(case, case.m_paper())
    }

    /// Autotune at a reduced element count (for tests). The underlying
    /// sweep runs in [`SweepMode::Refined`] — it returns the same best
    /// point as the full grid while probing only a fraction of it — and
    /// shares the Fig. 1 cache, so after `ghr fig1` the tuning is pure
    /// cache hits.
    pub fn autotune_scaled(&self, case: Case, m: u64) -> Result<TunedConfig> {
        let result = self.sweep_refined(&GpuSweep::paper_scaled(case, m))?;
        let best = result.best();
        Ok(TunedConfig {
            case,
            teams_axis: best.teams_axis,
            v: best.v,
            gbps: best.gbps,
        })
    }

    /// Autotune all four cases (each case's sweep fans its own grid).
    pub fn autotune_all(&self) -> Result<Vec<TunedConfig>> {
        Case::ALL.into_iter().map(|c| self.autotune(c)).collect()
    }

    /// One co-execution series, memoized. The cache granule depends on
    /// the allocation site (see the module docs): an A1 series is
    /// stateful across `p` and cached whole; an A2 series is assembled
    /// from its independent per-`p` points, each fanned across the pool
    /// and cached (in process and persistently) on its own.
    pub fn corun(&self, config: &CorunConfig) -> Result<Arc<CorunSeries>> {
        let key = (self.fingerprint, *config);
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = self.series.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(s);
        }
        let s = match config.alloc {
            AllocSite::A1 => {
                let skey = format!("corun-series {config:?}");
                if let Some(points) = self.store_get(&skey, store::decode_corun_points) {
                    Arc::new(CorunSeries {
                        config: *config,
                        points,
                    })
                } else {
                    let s = Arc::new(run_corun(&self.machine, config)?);
                    self.evaluated.fetch_add(1, Ordering::Relaxed);
                    self.store_put(skey, store::encode_corun_points(&s.points));
                    s
                }
            }
            AllocSite::A2 => {
                let idxs: Vec<u32> = (0..=config.p_steps).collect();
                let points = self
                    .map_grid(&idxs, |&i| self.corun_point_a2(config, i))?
                    .into_iter()
                    .collect::<Result<Vec<_>>>()?;
                Arc::new(CorunSeries {
                    config: *config,
                    points,
                })
            }
        };
        self.series.insert(key, Arc::clone(&s));
        Ok(s)
    }

    /// One `p` point of an A2 co-run series, memoized individually —
    /// byte-identical to the corresponding point of the sequential
    /// [`run_corun`] loop (each A2 iteration re-allocates, so no state
    /// crosses `p`; see [`run_corun_point`]).
    fn corun_point_a2(&self, config: &CorunConfig, i: u32) -> Result<CorunPoint> {
        let key = (self.fingerprint, *config, i);
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = self.corun_pts.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(p);
        }
        let skey = format!("corun-point {i} {config:?}");
        if let Some(p) = self.store_get(&skey, store::decode_corun_point) {
            self.corun_pts.insert(key, p);
            return Ok(p);
        }
        let p = run_corun_point(&self.machine, config, i)?;
        self.evaluated.fetch_add(1, Ordering::Relaxed);
        self.store_put(skey, store::encode_corun_point(&p));
        self.corun_pts.insert(key, p);
        Ok(p)
    }

    /// Evaluate several co-run series, fanned across the pool; results
    /// come back in config order.
    pub fn corun_many(&self, configs: &[CorunConfig]) -> Result<Vec<Arc<CorunSeries>>> {
        self.map_grid(configs, |cfg| self.corun(cfg))?
            .into_iter()
            .collect()
    }

    /// The full Section IV study at the paper's scale, its sixteen series
    /// fanned across the pool.
    pub fn full_study(&self) -> Result<CorunStudy> {
        self.full_study_scaled(None, None)
    }

    /// The full study with optional scaling — the parallel, memoized
    /// equivalent of [`crate::study::run_full_study_scaled`], assembling
    /// buckets in the same order.
    pub fn full_study_scaled(&self, m: Option<u64>, n_reps: Option<u32>) -> Result<CorunStudy> {
        let mut configs = Vec::with_capacity(16);
        for case in Case::ALL {
            let (base, opt) = study::kinds(case);
            for (kind, alloc) in [
                (base, AllocSite::A1),
                (opt, AllocSite::A1),
                (base, AllocSite::A2),
                (opt, AllocSite::A2),
            ] {
                let mut cfg = CorunConfig::paper(case, kind, alloc);
                if let Some(m) = m {
                    cfg.m = case.m_scaled(m);
                }
                if let Some(n) = n_reps {
                    cfg.n_reps = n;
                }
                configs.push(cfg);
            }
        }
        let series = self.map_grid(&configs, |cfg| self.corun(cfg))?;
        let mut out = CorunStudy {
            a1_base: Vec::with_capacity(4),
            a1_opt: Vec::with_capacity(4),
            a2_base: Vec::with_capacity(4),
            a2_opt: Vec::with_capacity(4),
        };
        for (i, s) in series.into_iter().enumerate() {
            let s = (*s?).clone();
            match i % 4 {
                0 => out.a1_base.push(s),
                1 => out.a1_opt.push(s),
                2 => out.a2_base.push(s),
                _ => out.a2_opt.push(s),
            }
        }
        Ok(out)
    }

    /// One what-if point: the baseline code under a runtime scenario, or
    /// (`scenario == None`) the optimized source-level-V reference.
    fn whatif_point(&self, scenario: Option<RuntimeScenario>, case: Case) -> Result<f64> {
        let key = PointKey::WhatIf {
            fingerprint: self.fingerprint,
            scenario,
            case,
        };
        self.cached(key, || {
            let gbps = match scenario {
                Some(sc) => {
                    let model = whatif::model_for(&self.machine, sc);
                    let launch = whatif::baseline_launch(&self.machine, case, sc);
                    model.reduce(&launch)?.effective_bw.as_gbps()
                }
                None => {
                    let model = GpuModel::new(self.machine.gpu.clone());
                    let launch = ghr_gpusim::calibrate::optimized_launch(match case {
                        Case::C1 => 1,
                        Case::C2 => 2,
                        Case::C3 => 3,
                        Case::C4 => 4,
                    });
                    model.reduce(&launch)?.effective_bw.as_gbps()
                }
            };
            Ok(gbps)
        })
    }

    /// The what-if study (runtime-side recovery of the baseline deficit),
    /// its 20 points fanned across the pool — the parallel, memoized
    /// equivalent of [`crate::whatif::whatif_study`].
    pub fn whatif(&self) -> Result<WhatIfStudy> {
        let scenarios = [
            RuntimeScenario::AsShipped,
            RuntimeScenario::SaturatingGrid { waves: 4 },
            RuntimeScenario::TwoPassCombine,
            RuntimeScenario::Both { waves: 4 },
        ];
        let mut grid: Vec<(Option<RuntimeScenario>, Case)> =
            Vec::with_capacity(scenarios.len() * 4 + 4);
        for scenario in scenarios {
            for case in Case::ALL {
                grid.push((Some(scenario), case));
            }
        }
        for case in Case::ALL {
            grid.push((None, case));
        }
        let gbps = self.map_grid(&grid, |&(scenario, case)| self.whatif_point(scenario, case))?;
        let mut gbps = gbps.into_iter();
        let mut next = |what: &str| {
            gbps.next()
                .ok_or_else(|| GhrError::internal(format!("what-if grid lost a {what}")))?
        };
        let mut rows = Vec::with_capacity(scenarios.len());
        for scenario in scenarios {
            let mut row = [0.0; 4];
            for g in row.iter_mut() {
                *g = next("scenario point")?;
            }
            rows.push(WhatIfRow {
                scenario,
                gbps: row,
            });
        }
        let mut optimized_gbps = [0.0; 4];
        for g in optimized_gbps.iter_mut() {
            *g = next("optimized point")?;
        }
        Ok(WhatIfStudy {
            rows,
            optimized_gbps,
        })
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Backstop flush of the persistent store; callers that care about
        // the entry count (or the I/O error) call `flush_store` directly.
        let _ = self.flush_store();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(threads: usize) -> Engine {
        Engine::new(MachineConfig::gh200(), threads)
    }

    #[test]
    fn fingerprint_distinguishes_machines() {
        let a = MachineConfig::gh200();
        let mut b = MachineConfig::gh200();
        b.cpu.cores += 1;
        assert_ne!(machine_fingerprint(&a), machine_fingerprint(&b));
        assert_eq!(machine_fingerprint(&a), machine_fingerprint(&a.clone()));
    }

    #[test]
    fn engine_with_zero_threads_resolves_a_default() {
        let e = engine(0);
        assert!(e.threads() >= 1);
    }

    #[test]
    fn gpu_point_matches_direct_runtime_call() {
        let e = engine(1);
        let region = TargetRegion::optimized(65536, 4);
        let direct = e
            .rt()
            .time_target_reduce(&region, 1 << 20, DType::I32, DType::I32, None)
            .unwrap()
            .effective_bw
            .as_gbps();
        let cached = e
            .gpu_point(&region, 1 << 20, DType::I32, DType::I32, None)
            .unwrap();
        assert_eq!(direct.to_bits(), cached.to_bits());
    }

    #[test]
    fn second_lookup_is_a_hit_not_an_evaluation() {
        let e = engine(1);
        let region = TargetRegion::baseline();
        for _ in 0..3 {
            e.gpu_point(&region, 1 << 20, DType::F32, DType::F32, None)
                .unwrap();
        }
        let s = e.stats();
        assert_eq!(s.evaluated, 1, "{s:?}");
        assert_eq!(s.hits, 2, "{s:?}");
        assert_eq!(s.lookups, 3, "{s:?}");
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn supply_cap_is_part_of_the_key() {
        let e = engine(1);
        let region = TargetRegion::optimized(65536, 4);
        let local = e
            .gpu_point(&region, 1 << 22, DType::I32, DType::I32, None)
            .unwrap();
        let capped = e
            .gpu_point(
                &region,
                1 << 22,
                DType::I32,
                DType::I32,
                Some(Bandwidth::gbps(380.0)),
            )
            .unwrap();
        assert!(capped < local);
        assert_eq!(e.stats().evaluated, 2);
    }

    #[test]
    fn refined_sweep_finds_the_exhaustive_best() {
        let e = engine(2);
        for case in Case::ALL {
            let sweep = GpuSweep::paper_scaled(case, 1 << 22);
            let full = e.sweep(&sweep).unwrap();
            let refined = e.sweep_refined(&sweep).unwrap();
            assert_eq!(refined.mode, SweepMode::Refined);
            let (fb, rb) = (full.best(), refined.best());
            assert_eq!(
                (fb.teams_axis, fb.v),
                (rb.teams_axis, rb.v),
                "{case}: exhaustive {fb:?} vs refined {rb:?}"
            );
            assert_eq!(fb.gbps.to_bits(), rb.gbps.to_bits(), "{case}");
            let (eval, grid) = refined.coverage();
            assert!(eval * 2 <= grid, "{case}: {eval}/{grid} evaluated");
        }
        let s = e.stats();
        assert!(s.sweep_evaluated > 0);
        assert!(s.sweep_skipped > 0);
    }

    #[test]
    fn sweep_mode_dispatches() {
        let e = engine(1);
        let sweep = GpuSweep::paper_scaled(Case::C1, 1 << 20);
        let a = e.sweep_mode(&sweep, SweepMode::Exhaustive).unwrap();
        let b = e.sweep_mode(&sweep, SweepMode::Refined).unwrap();
        assert_eq!(a.mode, SweepMode::Exhaustive);
        assert_eq!(b.mode, SweepMode::Refined);
        assert!(b.points.len() < a.points.len());
    }

    #[test]
    fn a2_series_assembled_from_points_matches_sequential_run() {
        let cfg = CorunConfig::paper(
            Case::C1,
            crate::reduction::KernelKind::Optimized {
                teams_axis: 65536,
                v: 4,
            },
            AllocSite::A2,
        );
        let reference = run_corun(&MachineConfig::gh200(), &cfg).unwrap();
        for threads in [1, 8] {
            let s = engine(threads).corun(&cfg).unwrap();
            assert_eq!(s.points.len(), reference.points.len(), "{threads} threads");
            for (a, b) in s.points.iter().zip(&reference.points) {
                assert_eq!(a, b, "{threads} threads");
            }
        }
    }

    #[test]
    fn a2_series_is_cached_as_points_and_as_a_series() {
        let e = engine(1);
        let cfg = CorunConfig::paper(
            Case::C2,
            crate::reduction::KernelKind::Baseline,
            AllocSite::A2,
        );
        e.corun(&cfg).unwrap();
        let s = e.stats();
        assert_eq!(s.evaluated, 11, "one evaluation per p point: {s:?}");
        assert_eq!(s.lookups, 12, "one series + eleven point lookups: {s:?}");
        e.corun(&cfg).unwrap();
        let s = e.stats();
        assert_eq!(s.evaluated, 11, "{s:?}");
        assert_eq!(s.hits, 1, "second run is one series hit: {s:?}");
    }

    #[test]
    fn whatif_matches_serial_study_bitwise() {
        let serial = whatif::whatif_study(&MachineConfig::gh200()).unwrap();
        for threads in [1, 4] {
            let ours = engine(threads).whatif().unwrap();
            assert_eq!(ours.rows.len(), serial.rows.len());
            for (a, b) in ours.rows.iter().zip(&serial.rows) {
                assert_eq!(a.scenario, b.scenario);
                for (x, y) in a.gbps.iter().zip(b.gbps) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            for (x, y) in ours.optimized_gbps.iter().zip(serial.optimized_gbps) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
