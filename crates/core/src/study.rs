//! The complete Section IV study: all sixteen co-execution series (four
//! cases x {baseline, optimized} x {A1, A2}) and the aggregate numbers the
//! paper quotes in its text and conclusion.

use crate::case::Case;
use crate::corun::{run_corun, AllocSite, CorunConfig, CorunSeries};
use crate::reduction::{KernelKind, ReductionSpec};
use crate::report::{fmt_speedup, Table};
use ghr_machine::MachineConfig;
use ghr_types::Result;

/// All sixteen series of Figures 2 and 4, in case order.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CorunStudy {
    /// Fig. 2a: baseline kernels, allocation at A1.
    pub a1_base: Vec<CorunSeries>,
    /// Fig. 2b: optimized kernels, allocation at A1.
    pub a1_opt: Vec<CorunSeries>,
    /// Fig. 4a: baseline kernels, allocation at A2.
    pub a2_base: Vec<CorunSeries>,
    /// Fig. 4b: optimized kernels, allocation at A2.
    pub a2_opt: Vec<CorunSeries>,
}

/// The aggregate quantities the paper reports in Section IV's text.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StudySummary {
    /// Per-case peak speedups over GPU-only, Fig. 2a (paper: 2.732, 2.246,
    /// 2.692, 2.297; average 2.492).
    pub a1_base_peaks: [f64; 4],
    /// Per-case peak speedups over GPU-only, Fig. 2b (paper: 2.253, 3.385,
    /// 2.100, 2.197; average 2.484).
    pub a1_opt_peaks: [f64; 4],
    /// Per-case peak speedups over GPU-only, Fig. 4b (paper: 1.139, 1.062,
    /// 1.050, 1.017; average 1.067).
    pub a2_opt_peaks: [f64; 4],
    /// Fig. 3 speedup range (paper: 0.996 to 10.654).
    pub fig3_range: (f64, f64),
    /// Fig. 5 speedup range (paper: 0.998 to 6.729).
    pub fig5_range: (f64, f64),
    /// Average ratio of optimized co-run bandwidth, A1 over A2
    /// (paper: 2.299).
    pub a1_over_a2_optimized: f64,
    /// CPU-only bandwidth ratio A2 over A1 (paper: 1.367 — A1 is slower).
    pub cpu_only_a2_over_a1: f64,
}

pub(crate) fn kinds(case: Case) -> (KernelKind, KernelKind) {
    (
        KernelKind::Baseline,
        match ReductionSpec::optimized_paper(case).kind {
            k @ KernelKind::Optimized { .. } => k,
            KernelKind::Baseline => unreachable!(),
        },
    )
}

/// The study's sixteen configs in canonical order: for each case,
/// (baseline, A1), (optimized, A1), (baseline, A2), (optimized, A2) —
/// i.e. bucket `i % 4`. Shared by the serial driver and the engine's
/// planner/assembly so both lower to identical cache keys.
pub(crate) fn study_configs(m: Option<u64>, n_reps: Option<u32>) -> Vec<CorunConfig> {
    let mut configs = Vec::with_capacity(16);
    for case in Case::ALL {
        let (base, opt) = kinds(case);
        for (kind, alloc) in [
            (base, AllocSite::A1),
            (opt, AllocSite::A1),
            (base, AllocSite::A2),
            (opt, AllocSite::A2),
        ] {
            let mut cfg = CorunConfig::paper(case, kind, alloc);
            if let Some(m) = m {
                cfg.m = case.m_scaled(m);
            }
            if let Some(n) = n_reps {
                cfg.n_reps = n;
            }
            configs.push(cfg);
        }
    }
    configs
}

/// Run the full study at the paper's scale.
pub fn run_full_study(machine: &MachineConfig) -> Result<CorunStudy> {
    run_full_study_scaled(machine, None, None)
}

/// Run the full study with optional scaling (for tests): `m` overrides the
/// element count (scaled per case), `n_reps` the repetition count.
pub fn run_full_study_scaled(
    machine: &MachineConfig,
    m: Option<u64>,
    n_reps: Option<u32>,
) -> Result<CorunStudy> {
    let mut study = CorunStudy {
        a1_base: Vec::with_capacity(4),
        a1_opt: Vec::with_capacity(4),
        a2_base: Vec::with_capacity(4),
        a2_opt: Vec::with_capacity(4),
    };
    for (i, cfg) in study_configs(m, n_reps).iter().enumerate() {
        let series = run_corun(machine, cfg)?;
        match i % 4 {
            0 => study.a1_base.push(series),
            1 => study.a1_opt.push(series),
            2 => study.a2_base.push(series),
            _ => study.a2_opt.push(series),
        }
    }
    Ok(study)
}

impl CorunStudy {
    /// Compute the paper's aggregate quantities.
    pub fn summary(&self) -> StudySummary {
        let peaks = |series: &[CorunSeries]| -> [f64; 4] {
            let mut out = [0.0; 4];
            for (o, s) in out.iter_mut().zip(series) {
                *o = s.peak_speedup_over_gpu_only();
            }
            out
        };
        let range = |opt: &[CorunSeries], base: &[CorunSeries]| -> (f64, f64) {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for (o, b) in opt.iter().zip(base) {
                for (_, s) in o.speedup_vs(b) {
                    lo = lo.min(s);
                    hi = hi.max(s);
                }
            }
            (lo, hi)
        };
        let avg_bw = |s: &CorunSeries| -> f64 {
            s.points.iter().map(|p| p.gbps).sum::<f64>() / s.points.len() as f64
        };
        let a1_avg: f64 = self.a1_opt.iter().map(avg_bw).sum::<f64>() / 4.0;
        let a2_avg: f64 = self.a2_opt.iter().map(avg_bw).sum::<f64>() / 4.0;
        let cpu_ratio: f64 = self
            .a1_opt
            .iter()
            .zip(&self.a2_opt)
            .map(|(a1, a2)| a2.cpu_only_gbps() / a1.cpu_only_gbps())
            .sum::<f64>()
            / 4.0;
        StudySummary {
            a1_base_peaks: peaks(&self.a1_base),
            a1_opt_peaks: peaks(&self.a1_opt),
            a2_opt_peaks: peaks(&self.a2_opt),
            fig3_range: range(&self.a1_opt, &self.a1_base),
            fig5_range: range(&self.a2_opt, &self.a2_base),
            a1_over_a2_optimized: a1_avg / a2_avg,
            cpu_only_a2_over_a1: cpu_ratio,
        }
    }
}

impl StudySummary {
    /// Average of an array.
    fn avg(xs: &[f64; 4]) -> f64 {
        xs.iter().sum::<f64>() / 4.0
    }

    /// Render the paper-vs-ours comparison of every text-quoted number.
    pub fn to_comparison_table(&self) -> Table {
        let mut t = Table::new(["Quantity", "Paper", "Ours"]);
        let rows: [(&str, f64, f64); 7] = [
            (
                "Avg peak speedup over GPU-only, baseline A1 (Fig 2a)",
                2.492,
                Self::avg(&self.a1_base_peaks),
            ),
            (
                "Avg peak speedup over GPU-only, optimized A1 (Fig 2b)",
                2.484,
                Self::avg(&self.a1_opt_peaks),
            ),
            (
                "Avg peak speedup over GPU-only, optimized A2 (Fig 4b)",
                1.067,
                Self::avg(&self.a2_opt_peaks),
            ),
            (
                "Fig 3 max speedup (optimized/baseline, A1)",
                10.654,
                self.fig3_range.1,
            ),
            (
                "Fig 5 max speedup (optimized/baseline, A2)",
                6.729,
                self.fig5_range.1,
            ),
            (
                "Optimized co-run average, A1 over A2",
                2.299,
                self.a1_over_a2_optimized,
            ),
            (
                "CPU-only bandwidth, A2 over A1",
                1.367,
                self.cpu_only_a2_over_a1,
            ),
        ];
        for (label, paper, ours) in rows {
            t.row([label.to_string(), fmt_speedup(paper), fmt_speedup(ours)]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The full study is expensive in debug builds; run it once and share.
    fn study() -> &'static CorunStudy {
        static STUDY: OnceLock<CorunStudy> = OnceLock::new();
        STUDY.get_or_init(|| {
            // Reduced reps keep debug-mode tests quick; the aggregate
            // ratios are insensitive to N beyond ~40 (checked in release).
            run_full_study_scaled(&MachineConfig::gh200(), None, Some(50)).unwrap()
        })
    }

    #[test]
    fn study_shape() {
        let s = study();
        assert_eq!(s.a1_base.len(), 4);
        assert_eq!(s.a1_opt.len(), 4);
        assert_eq!(s.a2_base.len(), 4);
        assert_eq!(s.a2_opt.len(), 4);
        for series in s.a1_base.iter().chain(&s.a2_opt) {
            assert_eq!(series.points.len(), 11);
        }
    }

    #[test]
    fn a1_peaks_beat_a2_peaks() {
        let sum = study().summary();
        assert!(
            StudySummary::avg(&sum.a1_opt_peaks) > StudySummary::avg(&sum.a2_opt_peaks),
            "{sum:?}"
        );
    }

    #[test]
    fn fig3_and_fig5_ranges_bracket_one() {
        let sum = study().summary();
        assert!(sum.fig3_range.0 <= 1.02, "{:?}", sum.fig3_range);
        assert!(sum.fig3_range.1 > 2.0, "{:?}", sum.fig3_range);
        assert!(sum.fig5_range.0 <= 1.02, "{:?}", sum.fig5_range);
        assert!(sum.fig5_range.1 > 1.5, "{:?}", sum.fig5_range);
    }

    #[test]
    fn cpu_only_ratio_close_to_paper() {
        let sum = study().summary();
        assert!(
            (sum.cpu_only_a2_over_a1 - 1.367).abs() < 0.08,
            "{:.3}",
            sum.cpu_only_a2_over_a1
        );
    }

    #[test]
    fn a1_over_a2_exceeds_one() {
        let sum = study().summary();
        assert!(
            sum.a1_over_a2_optimized > 1.0,
            "{:.3}",
            sum.a1_over_a2_optimized
        );
    }

    #[test]
    fn comparison_table_renders() {
        let md = study().summary().to_comparison_table().to_markdown();
        assert!(md.contains("Fig 2a"));
        assert!(md.contains("1.367"));
    }
}
