//! Terminal (ASCII) charts for the figure series, so `ghr ... --plot`
//! shows the paper's curves without leaving the terminal.

/// A multi-series scatter/line chart rendered with ASCII characters.
#[derive(Debug, Clone)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    log_x: bool,
    series: Vec<(char, Vec<(f64, f64)>)>,
    x_label: String,
    y_label: String,
}

impl AsciiChart {
    /// Create a chart canvas. `width`/`height` are the plot-area cell
    /// counts (clamped to at least 16x8).
    pub fn new(width: usize, height: usize) -> Self {
        AsciiChart {
            width: width.max(16),
            height: height.max(8),
            log_x: false,
            series: Vec::new(),
            x_label: String::new(),
            y_label: String::new(),
        }
    }

    /// Use a logarithmic x axis (the Fig. 1 teams axis).
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Axis labels.
    pub fn labels(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Add a series plotted with `marker`.
    pub fn series(mut self, marker: char, points: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let pts: Vec<(f64, f64)> = points
            .into_iter()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        self.series.push((marker, pts));
        self
    }

    fn x_of(&self, x: f64) -> f64 {
        if self.log_x {
            x.max(f64::MIN_POSITIVE).log2()
        } else {
            x
        }
    }

    /// Render the chart.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().map(|&(x, y)| (self.x_of(x), y)))
            .collect();
        if all.is_empty() {
            return String::from("(empty chart)\n");
        }
        let (mut x0, mut x1, mut y0, mut y1) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for &(x, y) in &all {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        // Start the y axis at zero for bandwidth-style charts.
        if y0 > 0.0 {
            y0 = 0.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (marker, pts) in &self.series {
            for &(x, y) in pts {
                let fx = (self.x_of(x) - x0) / (x1 - x0);
                let fy = (y - y0) / (y1 - y0);
                let col = ((fx * (self.width - 1) as f64).round() as usize).min(self.width - 1);
                let row = self.height
                    - 1
                    - ((fy * (self.height - 1) as f64).round() as usize).min(self.height - 1);
                grid[row][col] = *marker;
            }
        }

        let mut out = String::new();
        if !self.y_label.is_empty() {
            out.push_str(&format!("{}\n", self.y_label));
        }
        for (i, row) in grid.iter().enumerate() {
            let y_val = y1 - (y1 - y0) * i as f64 / (self.height - 1) as f64;
            out.push_str(&format!("{y_val:>9.0} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(self.width)));
        let x_lo = if self.log_x { 2f64.powf(x0) } else { x0 };
        let x_hi = if self.log_x { 2f64.powf(x1) } else { x1 };
        out.push_str(&format!(
            "{:>9}  {:<width$}\n",
            "",
            format!(
                "{x_lo:.1} .. {x_hi:.1}  {}{}",
                self.x_label,
                if self.log_x { " (log scale)" } else { "" }
            ),
            width = self.width
        ));
        let legend: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, (m, _))| format!("{m} series{i}"))
            .collect();
        if self.series.len() > 1 {
            out.push_str(&format!("{:>10} {}\n", "legend:", legend.join("  ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_at_extremes() {
        let chart = AsciiChart::new(20, 10)
            .labels("x", "y")
            .series('o', [(0.0, 0.0), (10.0, 100.0)]);
        let s = chart.render();
        assert!(s.contains('o'));
        // The max y label appears on the first plotted row.
        assert!(s.lines().nth(1).unwrap().contains("100"));
    }

    #[test]
    fn empty_chart_is_graceful() {
        assert_eq!(AsciiChart::new(20, 10).render(), "(empty chart)\n");
        let only_nan = AsciiChart::new(20, 10).series('x', [(f64::NAN, 1.0)]);
        assert_eq!(only_nan.render(), "(empty chart)\n");
    }

    #[test]
    fn log_x_spreads_power_of_two_points() {
        let s = AsciiChart::new(33, 8)
            .log_x()
            .series('*', (7..=16).map(|i| ((1u64 << i) as f64, i as f64)))
            .render();
        // Ten markers must land on ten distinct columns.
        let marker_cols: std::collections::BTreeSet<usize> =
            s.lines().filter_map(|l| l.find('*')).collect();
        assert!(marker_cols.len() >= 5, "{s}");
        assert!(s.contains("log scale"));
    }

    #[test]
    fn multiple_series_get_a_legend() {
        let s = AsciiChart::new(20, 8)
            .series('a', [(0.0, 1.0)])
            .series('b', [(1.0, 2.0)])
            .render();
        assert!(s.contains("legend:"));
        assert!(s.contains("a series0"));
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let s = AsciiChart::new(20, 8).series('x', [(1.0, 5.0), (2.0, 5.0)]);
        let rendered = s.render();
        assert!(rendered.contains('x'));
    }
}
