//! Figures 2a/2b/3/4a/4b/5: regenerate the co-execution series and measure
//! the co-run simulation (page walk + pricing) per case and site.

use ghr_bench::{machine, Harness};
use ghr_core::{
    case::Case,
    corun::{run_corun, AllocSite, CorunConfig},
    reduction::{KernelKind, ReductionSpec},
    report::Table,
    study::run_full_study,
};

fn print_figures() {
    let machine = machine();
    let study = run_full_study(&machine).expect("study");
    for (name, base, opt) in [
        ("Fig. 2a/2b (A1)", &study.a1_base, &study.a1_opt),
        ("Fig. 4a/4b (A2)", &study.a2_base, &study.a2_opt),
    ] {
        eprintln!("\n=== {name}: GB/s vs p, baseline | optimized ===");
        let mut t = Table::new([
            "p", "C1 b", "C1 o", "C2 b", "C2 o", "C3 b", "C3 o", "C4 b", "C4 o",
        ]);
        for i in 0..=10 {
            let mut row = vec![format!("{:.1}", i as f64 / 10.0)];
            for k in 0..4 {
                row.push(format!("{:.0}", base[k].points[i].gbps));
                row.push(format!("{:.0}", opt[k].points[i].gbps));
            }
            t.row(row);
        }
        eprint!("{}", t.to_markdown());
    }
    let sum = study.summary();
    eprintln!("\n=== Section IV aggregates (paper vs ours) ===");
    eprint!("{}", sum.to_comparison_table().to_markdown());
}

fn main() {
    let mut h = Harness::from_env("corun");
    print_figures();
    let machine = machine();
    h.group("corun");
    for alloc in [AllocSite::A1, AllocSite::A2] {
        for (kname, kind) in [
            ("base", KernelKind::Baseline),
            ("opt", ReductionSpec::optimized_paper(Case::C1).kind),
        ] {
            let cfg = CorunConfig::paper(Case::C1, kind, alloc);
            h.time(&format!("c1_{kname}_{alloc}"), || {
                run_corun(&machine, &cfg).unwrap().points.len()
            });
        }
    }
    h.finish();
}
