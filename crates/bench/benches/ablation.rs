//! Ablations of the design choices DESIGN.md calls out: which model
//! mechanism produces which feature of the paper's results. Prints an
//! ablation table (what the headline numbers become when a mechanism is
//! removed or perturbed), then measures the perturbed-model evaluation.

use ghr_bench::{machine, Harness};
use ghr_core::{
    case::Case,
    corun::{run_corun, AllocSite, CorunConfig},
    reduction::ReductionSpec,
    report::Table,
};
use ghr_gpusim::{calibrate, GpuModel, GpuModelParams};
use ghr_machine::GpuSpec;
use ghr_types::Bandwidth;
use std::hint::black_box;

/// Table-1 regime under a perturbed GPU model.
fn table1_pair(params: GpuModelParams) -> (f64, f64) {
    let model = GpuModel::with_params(GpuSpec::h100_sxm_gh200(), params);
    let base = model
        .bandwidth(&calibrate::baseline_launch(1))
        .unwrap()
        .as_gbps();
    let opt = model
        .bandwidth(&calibrate::optimized_launch(1))
        .unwrap()
        .as_gbps();
    (base, opt)
}

fn print_gpu_ablation() {
    eprintln!("\n=== GPU-model ablation (C1 baseline / optimized GB/s) ===");
    let mut t = Table::new(["ablation", "base GB/s", "opt GB/s", "speedup"]);
    let mut row = |label: &str, p: GpuModelParams| {
        let (b, o) = table1_pair(p);
        t.row([
            label.to_string(),
            format!("{b:.0}"),
            format!("{o:.0}"),
            format!("{:.2}", o / b),
        ]);
    };
    row("fitted (shipped defaults)", GpuModelParams::default());

    row(
        "no per-team overhead",
        GpuModelParams {
            team_overhead_ns: 0.0,
            combine_ns_i32: 0.0,
            ..Default::default()
        },
    );
    row(
        "unlimited memory concurrency",
        GpuModelParams {
            mlp_factor: 10.0,
            ..Default::default()
        },
    );
    row(
        "free loop overhead",
        GpuModelParams {
            instr_base: 0.0,
            ..Default::default()
        },
    );
    row(
        "ideal HBM streaming",
        GpuModelParams {
            hbm_efficiency_4b: 1.0,
            ..Default::default()
        },
    );
    eprint!("{}", t.to_markdown());
}

fn print_corun_ablation() {
    eprintln!("\n=== co-run ablation (C1 optimized A1: peak speedup over GPU-only) ===");
    let mut t = Table::new(["ablation", "peak speedup", "cpu-only GB/s"]);
    let spec = ReductionSpec::optimized_paper(Case::C1);
    let mut row = |label: &str, m: ghr_machine::MachineConfig| {
        let s = run_corun(&m, &CorunConfig::paper(Case::C1, spec.kind, AllocSite::A1)).unwrap();
        t.row([
            label.to_string(),
            format!("{:.3}", s.peak_speedup_over_gpu_only()),
            format!("{:.0}", s.cpu_only_gbps()),
        ]);
    };
    row("fitted (shipped defaults)", machine());

    let mut m = machine();
    m.link.migration.counter_migration_bw = Bandwidth::gbps(120.0);
    row("10x faster page migration", m);

    let mut m = machine();
    m.link.cpu_reads_gpu_mem = Bandwidth::gbps(450.0);
    row("full-rate CPU reads of HBM", m);

    let mut m = machine();
    m.link.gpu_reads_cpu_mem = Bandwidth::gbps(100.0);
    row("slow GPU remote reads", m);
    eprint!("{}", t.to_markdown());
}

fn main() {
    let mut h = Harness::from_env("ablation");
    print_gpu_ablation();
    print_corun_ablation();

    // Measure model evaluation under a perturbed parameter set (the
    // ablation costs exactly what the fitted model costs).
    let p = GpuModelParams {
        mlp_factor: 10.0,
        ..Default::default()
    };
    let model = GpuModel::with_params(GpuSpec::h100_sxm_gh200(), p);
    let launch = calibrate::optimized_launch(1);
    h.group("ablation");
    h.time("ablated_model_eval", || {
        black_box(model.reduce(&launch).unwrap().total)
    });
    h.finish();
}
