//! Table 1: regenerate the baseline-vs-optimized comparison and measure
//! one full regeneration.

use ghr_bench::{runtime, Harness};
use ghr_core::table1::table1;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_env("table1");
    let rt = runtime();
    let t = table1(&rt).expect("table1");
    eprintln!("\n=== Table 1 (reproduced) ===");
    eprint!("{}", t.to_table().to_markdown());
    eprintln!("\n=== vs paper ===");
    eprint!("{}", t.to_comparison_table().to_markdown());
    eprintln!("max relative error: {:.2}%", t.max_relative_error() * 100.0);

    h.time("table1_regenerate", || {
        black_box(table1(&rt).unwrap().rows.len())
    });
    h.finish();
}
