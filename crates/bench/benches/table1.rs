//! Table 1: regenerate the baseline-vs-optimized comparison and measure
//! one full regeneration.

use criterion::{criterion_group, criterion_main, Criterion};
use ghr_bench::runtime;
use ghr_core::table1::table1;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rt = runtime();
    let t = table1(&rt).expect("table1");
    eprintln!("\n=== Table 1 (reproduced) ===");
    eprint!("{}", t.to_table().to_markdown());
    eprintln!("\n=== vs paper ===");
    eprint!("{}", t.to_comparison_table().to_markdown());
    eprintln!("max relative error: {:.2}%", t.max_relative_error() * 100.0);

    c.bench_function("table1_regenerate", |b| {
        b.iter(|| black_box(table1(&rt).unwrap().rows.len()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
