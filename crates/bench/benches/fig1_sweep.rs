//! Fig. 1a–1d: regenerate the (teams x V) bandwidth matrices and measure
//! the sweep evaluation cost.

use ghr_bench::{runtime, Harness};
use ghr_core::{case::Case, sweep::GpuSweep};
use std::hint::black_box;

fn print_figures() {
    let rt = runtime();
    for case in Case::ALL {
        let r = GpuSweep::paper(case).run(&rt).expect("sweep");
        eprintln!(
            "\n=== Fig. 1 panel for {case} ({}) — GB/s ===",
            case.signature()
        );
        eprint!("{}", r.to_table().to_markdown());
        let best = r.best();
        eprintln!(
            "best: {:.0} GB/s at teams={} v={}",
            best.gbps, best.teams_axis, best.v
        );
    }
}

fn main() {
    let mut h = Harness::from_env("fig1_sweep");
    print_figures();
    let rt = runtime();
    h.group("fig1_sweep");
    for case in Case::ALL {
        let sweep = GpuSweep::paper(case);
        h.time(
            &format!("sweep_{}", case.label().to_ascii_lowercase()),
            || black_box(sweep.run(&rt).unwrap().points.len()),
        );
    }
    h.finish();
}
