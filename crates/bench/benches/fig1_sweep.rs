//! Fig. 1a–1d: regenerate the (teams x V) bandwidth matrices and measure
//! the sweep evaluation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use ghr_bench::runtime;
use ghr_core::{case::Case, sweep::GpuSweep};
use std::hint::black_box;

fn print_figures() {
    let rt = runtime();
    for case in Case::ALL {
        let r = GpuSweep::paper(case).run(&rt).expect("sweep");
        eprintln!(
            "\n=== Fig. 1 panel for {case} ({}) — GB/s ===",
            case.signature()
        );
        eprint!("{}", r.to_table().to_markdown());
        let best = r.best();
        eprintln!(
            "best: {:.0} GB/s at teams={} v={}",
            best.gbps, best.teams_axis, best.v
        );
    }
}

fn bench(c: &mut Criterion) {
    print_figures();
    let rt = runtime();
    let mut g = c.benchmark_group("fig1_sweep");
    for case in Case::ALL {
        g.bench_function(format!("sweep_{}", case.label().to_ascii_lowercase()), |b| {
            let sweep = GpuSweep::paper(case);
            b.iter(|| black_box(sweep.run(&rt).unwrap().points.len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
