//! Substrate micro-benchmarks: unified-memory page walks, the functional
//! GPU executor, and timing-model evaluation throughput.

use ghr_bench::{data, machine, Harness};
use ghr_gpusim::{execute_reduction, GpuModel, LaunchConfig};
use ghr_machine::GpuSpec;
use ghr_mem::UnifiedMemory;
use ghr_types::{Bytes, DType};
use std::hint::black_box;

fn bench_um(h: &mut Harness) {
    let machine = machine();
    h.group("unified_memory");
    // One full GPU pass over a 4 GiB region = 65536 page visits.
    let len = Bytes::gib(4);
    {
        let mut um = UnifiedMemory::new(&machine);
        let rid = um.alloc(len);
        um.cpu_access(rid, Bytes::ZERO, len);
        um.gpu_access(rid, Bytes::ZERO, len); // migrate once
        h.time("gpu_pass_4gib", || {
            black_box(um.gpu_access(rid, Bytes::ZERO, len).local)
        });
    }
    {
        let mut um = UnifiedMemory::new(&machine);
        h.time("alloc_init_free_256mib", || {
            let rid = um.alloc(Bytes::mib(256));
            um.cpu_access(rid, Bytes::ZERO, Bytes::mib(256));
            um.free(rid);
        });
    }
}

fn bench_executor(h: &mut Harness) {
    let n = 1 << 20;
    let i32s: Vec<i32> = data(n);
    let cfg = LaunchConfig {
        num_teams: 1024,
        threads_per_team: 256,
        v: 4,
        m: n as u64,
        elem: DType::I32,
        acc: DType::I32,
    };
    h.group("functional_executor");
    h.time_bytes("i32_1mi_elements", 4 * n as u64, || {
        black_box(execute_reduction(&i32s, &cfg).unwrap())
    });
}

fn bench_model(h: &mut Harness) {
    let model = GpuModel::new(GpuSpec::h100_sxm_gh200());
    let cfg = LaunchConfig {
        num_teams: 16384,
        threads_per_team: 256,
        v: 4,
        m: 1_048_576_000,
        elem: DType::I32,
        acc: DType::I32,
    };
    h.group("timing_model");
    h.time("gpu_model_eval", || {
        black_box(model.reduce(&cfg).unwrap().total)
    });

    let resources = ghr_gpusim::occupancy::SmResources::default();
    let team = ghr_gpusim::occupancy::TeamFootprint::reduction_kernel(256, 4, 8);
    let spec = GpuSpec::h100_sxm_gh200();
    h.time("occupancy_eval", || {
        black_box(ghr_gpusim::occupancy::occupancy(&spec, &resources, &team))
    });
}

fn bench_data_env(h: &mut Harness) {
    use ghr_omp::{DataEnvironment, MemoryMode};
    let machine = machine();
    h.group("data_environment");
    let mut env = DataEnvironment::new(&machine, MemoryMode::Separate);
    h.time("data_env_map_cycle", || {
        let (handle, t) = env.enter_data_to(Bytes::mib(64)).unwrap();
        let t2 = env.exit_data_from(handle).unwrap();
        black_box(t + t2)
    });
}

fn main() {
    let mut h = Harness::from_env("substrates");
    bench_um(&mut h);
    bench_executor(&mut h);
    bench_model(&mut h);
    bench_data_env(&mut h);
    h.finish();
}
