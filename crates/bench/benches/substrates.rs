//! Substrate micro-benchmarks: unified-memory page walks, the functional
//! GPU executor, and timing-model evaluation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ghr_bench::{data, machine};
use ghr_gpusim::{execute_reduction, GpuModel, LaunchConfig};
use ghr_machine::GpuSpec;
use ghr_mem::UnifiedMemory;
use ghr_types::{Bytes, DType};
use std::hint::black_box;

fn bench_um(c: &mut Criterion) {
    let machine = machine();
    let mut g = c.benchmark_group("unified_memory");
    // One full GPU pass over a 4 GiB region = 65536 page visits.
    let len = Bytes::gib(4);
    g.throughput(Throughput::Elements(machine.pages_for(len)));
    g.bench_function("gpu_pass_4gib", |b| {
        let mut um = UnifiedMemory::new(&machine);
        let rid = um.alloc(len);
        um.cpu_access(rid, Bytes::ZERO, len);
        um.gpu_access(rid, Bytes::ZERO, len); // migrate once
        b.iter(|| black_box(um.gpu_access(rid, Bytes::ZERO, len).local))
    });
    g.bench_function("alloc_init_free_256mib", |b| {
        let mut um = UnifiedMemory::new(&machine);
        b.iter(|| {
            let rid = um.alloc(Bytes::mib(256));
            um.cpu_access(rid, Bytes::ZERO, Bytes::mib(256));
            um.free(rid);
        })
    });
    g.finish();
}

fn bench_executor(c: &mut Criterion) {
    let n = 1 << 20;
    let i32s: Vec<i32> = data(n);
    let cfg = LaunchConfig {
        num_teams: 1024,
        threads_per_team: 256,
        v: 4,
        m: n as u64,
        elem: DType::I32,
        acc: DType::I32,
    };
    let mut g = c.benchmark_group("functional_executor");
    g.throughput(Throughput::Bytes(4 * n as u64));
    g.bench_function("i32_1mi_elements", |b| {
        b.iter(|| black_box(execute_reduction(&i32s, &cfg).unwrap()))
    });
    g.finish();
}

fn bench_model(c: &mut Criterion) {
    let model = GpuModel::new(GpuSpec::h100_sxm_gh200());
    let cfg = LaunchConfig {
        num_teams: 16384,
        threads_per_team: 256,
        v: 4,
        m: 1_048_576_000,
        elem: DType::I32,
        acc: DType::I32,
    };
    c.bench_function("gpu_model_eval", |b| {
        b.iter(|| black_box(model.reduce(&cfg).unwrap().total))
    });

    let resources = ghr_gpusim::occupancy::SmResources::default();
    let team = ghr_gpusim::occupancy::TeamFootprint::reduction_kernel(256, 4, 8);
    let spec = GpuSpec::h100_sxm_gh200();
    c.bench_function("occupancy_eval", |b| {
        b.iter(|| black_box(ghr_gpusim::occupancy::occupancy(&spec, &resources, &team)))
    });
}

fn bench_data_env(c: &mut Criterion) {
    use ghr_omp::{DataEnvironment, MemoryMode};
    let machine = machine();
    c.bench_function("data_env_map_cycle", |b| {
        let mut env = DataEnvironment::new(&machine, MemoryMode::Separate);
        b.iter(|| {
            let (h, t) = env.enter_data_to(Bytes::mib(64)).unwrap();
            let t2 = env.exit_data_from(h).unwrap();
            black_box(t + t2)
        })
    });
}

criterion_group!(benches, bench_um, bench_executor, bench_model, bench_data_env);
criterion_main!(benches);
