//! Scheduling-extension bench: regenerate the policy-comparison table and
//! measure the scheduled co-execution simulation.

use ghr_bench::{machine, Harness};
use ghr_core::{
    case::Case,
    sched::{compare_policies, comparison_table, run_scheduled, SchedConfig, SplitPolicy},
};

fn main() {
    let mut h = Harness::from_env("sched");
    let machine = machine();
    let outcomes = compare_policies(&machine, Case::C1, 10_000_000, 200).expect("policies");
    eprintln!("\n=== co-scheduling policy comparison (C1, optimized, UM) ===");
    eprint!("{}", comparison_table(&outcomes).to_markdown());

    h.group("sched");
    for policy in [
        SplitPolicy::Static { p: 0.1 },
        SplitPolicy::Adaptive { p0: 0.5 },
        SplitPolicy::DynamicChunks { chunks: 20 },
    ] {
        let cfg = SchedConfig::paper(Case::C1, policy).scaled(10_000_000, 50);
        h.time(&format!("{policy}"), || {
            run_scheduled(&machine, &cfg).unwrap().gbps
        });
    }
    h.finish();
}
