//! Scheduling-extension bench: regenerate the policy-comparison table and
//! measure the scheduled co-execution simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use ghr_bench::machine;
use ghr_core::{
    case::Case,
    sched::{compare_policies, comparison_table, run_scheduled, SchedConfig, SplitPolicy},
};

fn bench(c: &mut Criterion) {
    let machine = machine();
    let outcomes = compare_policies(&machine, Case::C1, 10_000_000, 200).expect("policies");
    eprintln!("\n=== co-scheduling policy comparison (C1, optimized, UM) ===");
    eprint!("{}", comparison_table(&outcomes).to_markdown());

    let mut g = c.benchmark_group("sched");
    g.sample_size(10);
    for policy in [
        SplitPolicy::Static { p: 0.1 },
        SplitPolicy::Adaptive { p0: 0.5 },
        SplitPolicy::DynamicChunks { chunks: 20 },
    ] {
        g.bench_function(format!("{policy}"), |b| {
            let cfg = SchedConfig::paper(Case::C1, policy).scaled(10_000_000, 50);
            b.iter(|| run_scheduled(&machine, &cfg).unwrap().gbps)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
