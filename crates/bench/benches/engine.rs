//! The evaluation engine: serial vs pooled grid evaluation, and cold vs
//! warm cache. The interesting comparisons:
//!
//! * `study_serial_driver` vs `study_engine_threads_N` — the Section IV
//!   16-series grid through the old one-at-a-time driver vs fanned across
//!   the worker pool (the `ghr summary` speedup);
//! * `sweep_cold` vs `sweep_warm` — a Fig. 1 sweep against an empty cache
//!   vs a populated one (the `ghr all` cross-driver memoization win).

use ghr_bench::{machine, Harness};
use ghr_core::{case::Case, engine::Engine, study::run_full_study_scaled, sweep::GpuSweep};
use ghr_omp::OmpRuntime;

/// Reduced scale keeps a single study iteration in the tens of
/// milliseconds so the min-of-N loop can take enough samples.
const M: u64 = 2_000_000;
const REPS: u32 = 10;

fn main() {
    let mut h = Harness::from_env("engine");
    let machine = machine();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    h.group("engine_study");
    h.time("study_serial_driver", || {
        run_full_study_scaled(&machine, Some(M), Some(REPS))
            .unwrap()
            .a1_base
            .len()
    });
    h.time("study_engine_threads_1", || {
        // Fresh engine per iteration: measures the grid driver, not
        // the cache.
        Engine::new(machine.clone(), 1)
            .full_study_scaled(Some(M), Some(REPS))
            .unwrap()
            .a1_base
            .len()
    });
    h.time(&format!("study_engine_threads_{threads}"), || {
        Engine::new(machine.clone(), threads)
            .full_study_scaled(Some(M), Some(REPS))
            .unwrap()
            .a1_base
            .len()
    });

    h.group("engine_sweep");
    {
        let rt = OmpRuntime::new(machine.clone());
        let sweep = GpuSweep::paper(Case::C1);
        h.time("sweep_serial_driver", || {
            sweep.run(&rt).unwrap().points.len()
        });
    }
    {
        let sweep = GpuSweep::paper(Case::C1);
        h.time("sweep_cold", || {
            Engine::new(machine.clone(), threads)
                .sweep(&sweep)
                .unwrap()
                .points
                .len()
        });
    }
    {
        let engine = Engine::new(machine.clone(), threads);
        let sweep = GpuSweep::paper(Case::C1);
        engine.sweep(&sweep).unwrap();
        h.time("sweep_warm", || engine.sweep(&sweep).unwrap().points.len());
    }
    h.finish();
}
