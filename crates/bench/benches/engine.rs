//! The evaluation engine: serial vs pooled grid evaluation, and cold vs
//! warm cache. The interesting comparisons:
//!
//! * `study_serial_driver` vs `study_engine_threads_N` — the Section IV
//!   16-series grid through the old one-at-a-time driver vs fanned across
//!   the worker pool (the `ghr summary` speedup);
//! * `sweep_cold` vs `sweep_warm` — a Fig. 1 sweep against an empty cache
//!   vs a populated one (the `ghr all` cross-driver memoization win).

use criterion::{criterion_group, criterion_main, Criterion};
use ghr_bench::machine;
use ghr_core::{
    case::Case,
    engine::Engine,
    study::run_full_study_scaled,
    sweep::GpuSweep,
};
use ghr_omp::OmpRuntime;

/// Reduced scale keeps a single study iteration in the tens of
/// milliseconds so Criterion can take enough samples.
const M: u64 = 2_000_000;
const REPS: u32 = 10;

fn bench(c: &mut Criterion) {
    let machine = machine();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut g = c.benchmark_group("engine_study");
    g.sample_size(10);
    g.bench_function("study_serial_driver", |b| {
        b.iter(|| {
            run_full_study_scaled(&machine, Some(M), Some(REPS))
                .unwrap()
                .a1_base
                .len()
        })
    });
    g.bench_function("study_engine_threads_1", |b| {
        b.iter(|| {
            // Fresh engine per iteration: measures the grid driver, not
            // the cache.
            Engine::new(machine.clone(), 1)
                .full_study_scaled(Some(M), Some(REPS))
                .unwrap()
                .a1_base
                .len()
        })
    });
    g.bench_function(format!("study_engine_threads_{threads}"), |b| {
        b.iter(|| {
            Engine::new(machine.clone(), threads)
                .full_study_scaled(Some(M), Some(REPS))
                .unwrap()
                .a1_base
                .len()
        })
    });
    g.finish();

    let mut g = c.benchmark_group("engine_sweep");
    g.bench_function("sweep_serial_driver", |b| {
        let rt = OmpRuntime::new(machine.clone());
        let sweep = GpuSweep::paper(Case::C1);
        b.iter(|| sweep.run(&rt).unwrap().points.len())
    });
    g.bench_function("sweep_cold", |b| {
        let sweep = GpuSweep::paper(Case::C1);
        b.iter(|| {
            Engine::new(machine.clone(), threads)
                .sweep(&sweep)
                .unwrap()
                .points
                .len()
        })
    });
    g.bench_function("sweep_warm", |b| {
        let engine = Engine::new(machine.clone(), threads);
        let sweep = GpuSweep::paper(Case::C1);
        engine.sweep(&sweep).unwrap();
        b.iter(|| engine.sweep(&sweep).unwrap().points.len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
