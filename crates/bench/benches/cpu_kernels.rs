//! Real CPU reduction kernels (the loop bodies of Listings 1 and 5),
//! measured for real on the build host with throughput reporting.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ghr_bench::{bytes_of, data};
use ghr_parallel::{
    parallel_sum_unrolled, sum_kahan, sum_pairwise, sum_sequential, sum_unrolled, ChunkPolicy,
};
use std::hint::black_box;

const N: usize = 4 << 20; // 4 Mi elements

fn bench_unrolled(c: &mut Criterion) {
    let i32s: Vec<i32> = data(N);
    let f64s: Vec<f64> = data(N);
    let i8s: Vec<i8> = data(4 * N);

    let mut g = c.benchmark_group("sum_unrolled");
    g.throughput(Throughput::Bytes(bytes_of::<i32>(N)));
    g.bench_function("i32_sequential", |b| {
        b.iter(|| black_box(sum_sequential(&i32s)))
    });
    for v in [2usize, 4, 8, 32] {
        g.bench_function(format!("i32_v{v}"), |b| {
            b.iter(|| black_box(sum_unrolled(&i32s, v)))
        });
    }
    g.throughput(Throughput::Bytes(bytes_of::<i8>(4 * N)));
    for v in [1usize, 32] {
        g.bench_function(format!("i8_to_i64_v{v}"), |b| {
            b.iter(|| black_box(sum_unrolled(&i8s, v)))
        });
    }
    g.throughput(Throughput::Bytes(bytes_of::<f64>(N)));
    g.bench_function("f64_v8", |b| b.iter(|| black_box(sum_unrolled(&f64s, 8))));
    g.finish();
}

fn bench_accurate(c: &mut Criterion) {
    let f64s: Vec<f64> = data(N);
    let mut g = c.benchmark_group("accurate_sums");
    g.throughput(Throughput::Bytes(bytes_of::<f64>(N)));
    g.bench_function("kahan", |b| b.iter(|| black_box(sum_kahan(&f64s))));
    g.bench_function("pairwise", |b| b.iter(|| black_box(sum_pairwise(&f64s))));
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let i32s: Vec<i32> = data(4 * N);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut g = c.benchmark_group("parallel_sum");
    g.throughput(Throughput::Bytes(bytes_of::<i32>(4 * N)));
    for t in [1usize, 2, threads] {
        g.bench_function(format!("i32_threads{t}"), |b| {
            b.iter(|| black_box(parallel_sum_unrolled(&i32s, t, 8, ChunkPolicy::Static)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_unrolled, bench_accurate, bench_parallel);
criterion_main!(benches);
