//! Real CPU reduction kernels (the loop bodies of Listings 1 and 5),
//! measured for real on the build host with throughput reporting —
//! including the scalar-vs-SIMD comparison of the substrate kernel layer.

use ghr_bench::{bytes_of, data, Harness};
use ghr_parallel::{
    parallel_sum_unrolled, simd, sum_kahan, sum_pairwise, sum_sequential, sum_unrolled,
    sum_unrolled_with_backend, Backend, ChunkPolicy,
};
use std::hint::black_box;

const N: usize = 4 << 20; // 4 Mi elements

fn bench_unrolled(h: &mut Harness) {
    let n = if h.quick() { N / 4 } else { N };
    let i32s: Vec<i32> = data(n);
    let f64s: Vec<f64> = data(n);
    let i8s: Vec<i8> = data(4 * n);

    h.group("sum_unrolled");
    h.time_bytes("i32_sequential", bytes_of::<i32>(n), || {
        black_box(sum_sequential(&i32s))
    });
    for v in [2usize, 4, 8, 32] {
        h.time_bytes(&format!("i32_v{v}"), bytes_of::<i32>(n), || {
            black_box(sum_unrolled(&i32s, v))
        });
    }
    for v in [1usize, 32] {
        h.time_bytes(&format!("i8_to_i64_v{v}"), bytes_of::<i8>(4 * n), || {
            black_box(sum_unrolled(&i8s, v))
        });
    }
    h.time_bytes("f64_v8", bytes_of::<f64>(n), || {
        black_box(sum_unrolled(&f64s, 8))
    });
}

fn bench_simd_vs_scalar(h: &mut Harness) {
    let n = if h.quick() { N / 4 } else { N };
    let i32s: Vec<i32> = data(n);
    let f32s: Vec<f32> = data(n);
    let f64s: Vec<f64> = data(n);
    let i8s: Vec<i8> = data(4 * n);
    let simd = Backend::active();

    h.group(&format!("scalar vs simd ({})", simd::report()));
    for backend in [Backend::Scalar, simd] {
        let tag = backend.label();
        h.time_bytes(&format!("i32_v8_{tag}"), bytes_of::<i32>(n), || {
            black_box(sum_unrolled_with_backend(&i32s, 8, backend))
        });
        h.time_bytes(
            &format!("i8_to_i64_v32_{tag}"),
            bytes_of::<i8>(4 * n),
            || black_box(sum_unrolled_with_backend(&i8s, 32, backend)),
        );
        h.time_bytes(&format!("f32_v8_{tag}"), bytes_of::<f32>(n), || {
            black_box(sum_unrolled_with_backend(&f32s, 8, backend))
        });
        h.time_bytes(&format!("f64_v8_{tag}"), bytes_of::<f64>(n), || {
            black_box(sum_unrolled_with_backend(&f64s, 8, backend))
        });
    }
}

fn bench_accurate(h: &mut Harness) {
    let n = if h.quick() { N / 4 } else { N };
    let f64s: Vec<f64> = data(n);
    h.group("accurate_sums");
    h.time_bytes("kahan", bytes_of::<f64>(n), || black_box(sum_kahan(&f64s)));
    h.time_bytes("pairwise", bytes_of::<f64>(n), || {
        black_box(sum_pairwise(&f64s))
    });
}

fn bench_parallel(h: &mut Harness) {
    let n = if h.quick() { N } else { 4 * N };
    let i32s: Vec<i32> = data(n);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    h.group("parallel_sum");
    for t in [1usize, 2, threads] {
        h.time_bytes(&format!("i32_threads{t}"), bytes_of::<i32>(n), || {
            black_box(parallel_sum_unrolled(&i32s, t, 8, ChunkPolicy::Static))
        });
    }
}

fn main() {
    let mut h = Harness::from_env("cpu_kernels");
    bench_unrolled(&mut h);
    bench_simd_vs_scalar(&mut h);
    bench_accurate(&mut h);
    bench_parallel(&mut h);
    h.finish();
}
