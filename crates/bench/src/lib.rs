//! # ghr-bench
//!
//! Std-only benchmark harness. Each bench target regenerates one of the
//! paper's artifacts (printing the same rows/series the paper reports)
//! and then measures the relevant code path with the same warmup +
//! min-of-N timing core the CLI's `ghr bench` uses
//! ([`ghr_parallel::microbench::time_min`]) — no Criterion, so the whole
//! workspace resolves and builds offline.
//!
//! | target | paper artifact | measured path |
//! |--------|----------------|---------------|
//! | `fig1_sweep` | Fig. 1a–1d | full (teams x V) sweep evaluation |
//! | `table1` | Table 1 | baseline + optimized model evaluation |
//! | `corun` | Figs. 2/3/4/5 | co-execution page-sim + pricing |
//! | `cpu_kernels` | Listing 1/5 loop bodies | real CPU reduction kernels, scalar vs SIMD |
//! | `substrates` | — | UM page walks, executor, model throughput |
//! | `ablation` | DESIGN.md ablations | model under perturbed parameters |
//! | `sched` | — (extension) | scheduled co-execution policies |
//! | `engine` | — | serial vs pooled grids, cold vs warm cache |
//!
//! Run with `cargo bench` (all targets) or
//! `cargo bench -p ghr-bench --bench cpu_kernels`. Set `GHR_BENCH_QUICK=1`
//! (or pass `--quick`) for a fast smoke pass with fewer repetitions.

#![warn(missing_docs)]

use ghr_machine::MachineConfig;
use ghr_omp::OmpRuntime;
use ghr_parallel::time_min;
use ghr_types::Element;
use std::time::Duration;

/// The paper's machine.
pub fn machine() -> MachineConfig {
    MachineConfig::gh200()
}

/// A separate-memory runtime over the paper's machine.
pub fn runtime() -> OmpRuntime {
    OmpRuntime::new(machine())
}

/// Deterministic test data for the real-kernel benches.
pub fn data<T: Element>(n: usize) -> Vec<T> {
    (0..n as u64).map(T::from_index).collect()
}

/// Bytes processed by a slice of `T`, for throughput reporting.
pub fn bytes_of<T>(n: usize) -> u64 {
    (n * std::mem::size_of::<T>()) as u64
}

/// Per-target bench driver: owns the warmup/repetition policy and prints
/// one aligned line per measured function.
pub struct Harness {
    warmup: usize,
    reps: usize,
    quick: bool,
    measured: usize,
}

impl Harness {
    /// Build a harness for one bench target, honouring `--quick` /
    /// `GHR_BENCH_QUICK=1` and ignoring the arguments cargo's bench
    /// runner passes through (`--bench`, filter strings).
    pub fn from_env(target: &str) -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("GHR_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
        let (warmup, reps) = if quick { (1, 3) } else { (2, 7) };
        eprintln!(
            "\n=== bench target `{target}` (std-only harness: min of {reps} timed reps, \
             {warmup} warmup{}) ===",
            if quick { ", quick mode" } else { "" }
        );
        Harness {
            warmup,
            reps,
            quick,
            measured: 0,
        }
    }

    /// Quick mode requested (targets can shrink their workloads too).
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// Print a group header, mirroring Criterion's benchmark groups.
    pub fn group(&self, name: &str) {
        eprintln!("\n--- {name} ---");
    }

    /// Time `f` (warmup + min-of-N) and print the best time.
    pub fn time<R, F: FnMut() -> R>(&mut self, name: &str, f: F) -> Duration {
        self.time_inner(name, None, f)
    }

    /// Time `f` and print the best time plus input throughput for a
    /// workload of `bytes` per repetition.
    pub fn time_bytes<R, F: FnMut() -> R>(&mut self, name: &str, bytes: u64, f: F) -> Duration {
        self.time_inner(name, Some(bytes), f)
    }

    fn time_inner<R, F: FnMut() -> R>(&mut self, name: &str, bytes: Option<u64>, f: F) -> Duration {
        let (best, _) = time_min(self.warmup, self.reps, f);
        let secs = best.as_secs_f64().max(1e-12);
        match bytes {
            Some(b) => eprintln!(
                "{name:<44} best {:>10.3} ms   {:>8.2} GB/s",
                secs * 1e3,
                b as f64 / secs / 1e9
            ),
            None => eprintln!("{name:<44} best {:>10.3} ms", secs * 1e3),
        }
        self.measured += 1;
        best
    }

    /// Print the closing line. Call last from the target's `main`.
    pub fn finish(self) {
        eprintln!("\n{} function(s) measured", self.measured);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_counts() {
        let mut h = Harness {
            warmup: 0,
            reps: 1,
            quick: true,
            measured: 0,
        };
        let d = h.time("noop", || 1 + 1);
        assert!(d.as_nanos() > 0);
        let d = h.time_bytes("bytes", 1 << 20, || (0..100u64).sum::<u64>());
        assert!(d.as_nanos() > 0);
        assert_eq!(h.measured, 2);
        h.finish();
    }

    #[test]
    fn helpers_build_paper_machine_and_data() {
        assert_eq!(machine().cpu.cores, 72);
        let v: Vec<i32> = data(10);
        assert_eq!(v.len(), 10);
        assert_eq!(bytes_of::<i32>(10), 40);
    }
}
