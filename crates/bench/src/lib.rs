//! # ghr-bench
//!
//! Shared helpers for the Criterion benchmark harness. Each bench target
//! regenerates one of the paper's artifacts (printing the same rows/series
//! the paper reports) and then measures the relevant code path:
//!
//! | target | paper artifact | measured path |
//! |--------|----------------|---------------|
//! | `fig1_sweep` | Fig. 1a–1d | full (teams x V) sweep evaluation |
//! | `table1` | Table 1 | baseline + optimized model evaluation |
//! | `corun` | Figs. 2/3/4/5 | co-execution page-sim + pricing |
//! | `cpu_kernels` | Listing 1/5 loop bodies | real CPU reduction kernels |
//! | `substrates` | — | UM page walks, executor, model throughput |
//! | `ablation` | DESIGN.md ablations | model under perturbed parameters |

#![warn(missing_docs)]

use ghr_machine::MachineConfig;
use ghr_omp::OmpRuntime;
use ghr_types::Element;

/// The paper's machine.
pub fn machine() -> MachineConfig {
    MachineConfig::gh200()
}

/// A separate-memory runtime over the paper's machine.
pub fn runtime() -> OmpRuntime {
    OmpRuntime::new(machine())
}

/// Deterministic test data for the real-kernel benches.
pub fn data<T: Element>(n: usize) -> Vec<T> {
    (0..n as u64).map(T::from_index).collect()
}

/// Bytes processed by a slice of `T`, for Criterion throughput reporting.
pub fn bytes_of<T>(n: usize) -> u64 {
    (n * std::mem::size_of::<T>()) as u64
}
