//! Bit-identity contract of the SIMD kernel layer, pinned as an
//! integration suite: for every available backend, every paper dtype,
//! every unroll factor and a battery of awkward lengths, the vector
//! kernels must reproduce the scalar unrolled kernel's accumulation tree
//! *exactly* — integer equality for i32/i8, bit-for-bit float equality
//! (not epsilon closeness) for f32/f64.
//!
//! Deterministic and std-only: the gated proptest suite shrinks better,
//! but this one always runs, offline, on every `cargo test`.

use ghr_parallel::{parallel_sum_unrolled_on, sum_unrolled_with_backend, Backend, ChunkPolicy};
use ghr_types::Element;

/// Lengths chosen to hit every edge of the kernel structure: empty, a
/// single element, shorter than any vector width, tails of every size
/// modulo V, exact multiples, and a long-enough run to exercise the main
/// loop many times.
const LENGTHS: &[usize] = &[
    0, 1, 2, 3, 5, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 127, 255, 1000, 1023, 4096,
    10_007,
];

const VS: &[usize] = &[1, 2, 4, 8, 16, 32];

fn backends_under_test() -> Vec<Backend> {
    [Backend::Sse2, Backend::Avx2, Backend::Neon]
        .into_iter()
        .filter(|b| b.available())
        .collect()
}

/// Deterministic value stream with sign changes and enough dynamic range
/// that float rounding differences would be visible: index-hash mapped
/// through the dtype's `from_index` plus an alternating sign.
fn awkward_data<T: Element>(n: usize) -> Vec<T> {
    (0..n as u64)
        .map(|i| T::from_index((i.wrapping_mul(2654435761) >> 7) % 509))
        .collect()
}

fn assert_parity<T: Element>(dtype: &str) {
    for &n in LENGTHS {
        let data = awkward_data::<T>(n);
        for &v in VS {
            let scalar = sum_unrolled_with_backend(&data, v, Backend::Scalar);
            for b in backends_under_test() {
                let got = sum_unrolled_with_backend(&data, v, b);
                // `==` (not approx) — the contract is bit-identity.
                assert!(
                    got == scalar,
                    "{dtype}: backend {b} diverged from scalar at n={n} v={v}"
                );
            }
        }
    }
}

#[test]
fn i32_sums_are_bit_identical_across_backends() {
    assert_parity::<i32>("i32");
}

#[test]
fn i8_widening_sums_are_bit_identical_across_backends() {
    assert_parity::<i8>("i8");
}

#[test]
fn f32_sums_are_bit_identical_across_backends() {
    assert_parity::<f32>("f32");
}

#[test]
fn f64_sums_are_bit_identical_across_backends() {
    assert_parity::<f64>("f64");
}

#[test]
fn parallel_reductions_are_bit_identical_across_backends() {
    let data = awkward_data::<f32>(10_007);
    for &v in &[1usize, 8, 32] {
        for threads in [1usize, 2, 3, 8] {
            let scalar =
                parallel_sum_unrolled_on(&data, threads, v, ChunkPolicy::Static, Backend::Scalar)
                    .unwrap();
            for b in backends_under_test() {
                let got =
                    parallel_sum_unrolled_on(&data, threads, v, ChunkPolicy::Static, b).unwrap();
                assert!(
                    got == scalar,
                    "parallel f32: backend {b} diverged at threads={threads} v={v}"
                );
            }
        }
    }
}

#[test]
fn negative_floats_and_cancellation_stay_bit_identical() {
    // Alternating-sign series with partial cancellation — the shape where
    // a reassociating (non-contract-honouring) vector sum would betray
    // itself first.
    for &n in &[63usize, 64, 65, 1001] {
        let data: Vec<f32> = (0..n)
            .map(|i| {
                let x = <f32 as Element>::from_index((i as u64 % 97) + 1);
                if i % 2 == 0 {
                    x
                } else {
                    -x * 0.5
                }
            })
            .collect();
        for &v in VS {
            let scalar = sum_unrolled_with_backend(&data, v, Backend::Scalar);
            for b in backends_under_test() {
                let got = sum_unrolled_with_backend(&data, v, b);
                assert!(
                    got.to_bits() == scalar.to_bits(),
                    "cancellation case: backend {b} n={n} v={v}: {got:e} vs {scalar:e}"
                );
            }
        }
    }
}
