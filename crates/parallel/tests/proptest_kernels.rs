//! Property tests of the real reduction kernels and the thread pool.

//
// Gated off by default: compiling this suite needs the `proptest` crate,
// which is not vendored. Restore it to [dev-dependencies] and build with
// `--features proptest` (registry access required).
#![cfg(feature = "proptest")]

use ghr_parallel::{
    parallel_max, parallel_min, parallel_sum, parallel_sum_unrolled, sum_kahan, sum_pairwise,
    sum_sequential, sum_unrolled, ChunkPolicy, ThreadPool,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every integer kernel variant computes the same exact sum.
    #[test]
    fn all_i32_kernels_agree(
        data in proptest::collection::vec(-10_000i32..10_000, 0..20_000),
        threads in 1usize..12,
        v_idx in 0usize..6,
        chunk in 1usize..2000,
    ) {
        let v = [1usize, 2, 4, 8, 16, 32][v_idx];
        let expect = sum_sequential(&data);
        prop_assert_eq!(sum_unrolled(&data, v), expect);
        prop_assert_eq!(sum_pairwise(&data), expect);
        prop_assert_eq!(parallel_sum(&data, threads), expect);
        prop_assert_eq!(
            parallel_sum_unrolled(&data, threads, v, ChunkPolicy::StaticChunked(chunk)),
            expect
        );
    }

    /// Min/max agree with the iterator versions, widened.
    #[test]
    fn min_max_agree_with_iterators(
        data in proptest::collection::vec(-100i8..100, 1..10_000),
        threads in 1usize..10,
    ) {
        prop_assert_eq!(
            parallel_min(&data, threads),
            *data.iter().min().unwrap() as i64
        );
        prop_assert_eq!(
            parallel_max(&data, threads),
            *data.iter().max().unwrap() as i64
        );
    }

    /// Float kernels agree within recursive-summation bounds, and Kahan is
    /// at least as close to the exact (f64-accumulated) sum as the naive
    /// f32 loop.
    #[test]
    fn float_kernels_are_bounded(
        data in proptest::collection::vec(-1.0f32..1.0, 1..10_000),
        threads in 1usize..8,
    ) {
        let exact: f64 = data.iter().map(|&x| x as f64).sum();
        let naive = sum_sequential(&data) as f64;
        let par = parallel_sum(&data, threads) as f64;
        let bound = f32::EPSILON as f64 * data.len() as f64 * data.len() as f64;
        prop_assert!((par - exact).abs() <= bound.max(1e-6));
        prop_assert!((naive - exact).abs() <= bound.max(1e-6));
        // Kahan in f64 over widened data reproduces the exact sum closely.
        let wide: Vec<f64> = data.iter().map(|&x| x as f64).collect();
        prop_assert!((sum_kahan(&wide) - exact).abs() <= 1e-9 * exact.abs().max(1.0));
    }

    /// The thread pool runs every submitted job exactly once, for any
    /// pool size and job count.
    #[test]
    fn pool_runs_each_job_once(threads in 1usize..8, jobs in 0usize..200) {
        let pool = ThreadPool::new(threads);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..jobs {
            let c = Arc::clone(&counter);
            pool.submit(move || { c.fetch_add(1, Ordering::Relaxed); });
        }
        pool.wait();
        prop_assert_eq!(counter.load(Ordering::Relaxed), jobs as u64);
    }
}
