//! Property tests of the real reduction kernels and the thread pool.
//!
//! Two modes, same invariants: shrinking proptest strategies with
//! `--features proptest` (registry access required to restore the crate
//! to [dev-dependencies]), and a std-only SplitMix64 fallback by
//! default so the properties run offline on every `cargo test`.

#[cfg(feature = "proptest")]
mod with_proptest {
    use ghr_parallel::{
        parallel_max, parallel_min, parallel_sum, parallel_sum_unrolled, sum_kahan, sum_pairwise,
        sum_sequential, sum_unrolled, ChunkPolicy, ThreadPool,
    };
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every integer kernel variant computes the same exact sum.
        #[test]
        fn all_i32_kernels_agree(
            data in proptest::collection::vec(-10_000i32..10_000, 0..20_000),
            threads in 1usize..12,
            v_idx in 0usize..6,
            chunk in 1usize..2000,
        ) {
            let v = [1usize, 2, 4, 8, 16, 32][v_idx];
            let expect = sum_sequential(&data);
            prop_assert_eq!(sum_unrolled(&data, v), expect);
            prop_assert_eq!(sum_pairwise(&data), expect);
            prop_assert_eq!(parallel_sum(&data, threads), expect);
            prop_assert_eq!(
                parallel_sum_unrolled(&data, threads, v, ChunkPolicy::StaticChunked(chunk)),
                expect
            );
        }

        /// Min/max agree with the iterator versions, widened.
        #[test]
        fn min_max_agree_with_iterators(
            data in proptest::collection::vec(-100i8..100, 1..10_000),
            threads in 1usize..10,
        ) {
            prop_assert_eq!(
                parallel_min(&data, threads),
                *data.iter().min().unwrap() as i64
            );
            prop_assert_eq!(
                parallel_max(&data, threads),
                *data.iter().max().unwrap() as i64
            );
        }

        /// Float kernels agree within recursive-summation bounds, and Kahan is
        /// at least as close to the exact (f64-accumulated) sum as the naive
        /// f32 loop.
        #[test]
        fn float_kernels_are_bounded(
            data in proptest::collection::vec(-1.0f32..1.0, 1..10_000),
            threads in 1usize..8,
        ) {
            let exact: f64 = data.iter().map(|&x| x as f64).sum();
            let naive = sum_sequential(&data) as f64;
            let par = parallel_sum(&data, threads) as f64;
            let bound = f32::EPSILON as f64 * data.len() as f64 * data.len() as f64;
            prop_assert!((par - exact).abs() <= bound.max(1e-6));
            prop_assert!((naive - exact).abs() <= bound.max(1e-6));
            // Kahan in f64 over widened data reproduces the exact sum closely.
            let wide: Vec<f64> = data.iter().map(|&x| x as f64).collect();
            prop_assert!((sum_kahan(&wide) - exact).abs() <= 1e-9 * exact.abs().max(1.0));
        }

        /// The thread pool runs every submitted job exactly once, for any
        /// pool size and job count.
        #[test]
        fn pool_runs_each_job_once(threads in 1usize..8, jobs in 0usize..200) {
            let pool = ThreadPool::new(threads);
            let counter = Arc::new(AtomicU64::new(0));
            for _ in 0..jobs {
                let c = Arc::clone(&counter);
                pool.submit(move || { c.fetch_add(1, Ordering::Relaxed); });
            }
            pool.wait();
            prop_assert_eq!(counter.load(Ordering::Relaxed), jobs as u64);
        }
    }
}

/// Std-only fallback: the same invariants over SplitMix64-seeded random
/// cases (no shrinking, but exercised offline on every `cargo test`).
#[cfg(not(feature = "proptest"))]
mod std_fallback {
    use ghr_parallel::{
        parallel_max, parallel_min, parallel_sum, parallel_sum_unrolled, sum_kahan, sum_pairwise,
        sum_sequential, sum_unrolled, ChunkPolicy, ThreadPool,
    };
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct SplitMix64(u64);

    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        /// Uniform in `[0, 1)`.
        fn unit(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    const CASES: usize = 64;

    #[test]
    fn all_i32_kernels_agree() {
        let mut rng = SplitMix64(0x2a11_0001);
        for _ in 0..CASES {
            let len = rng.below(20_000) as usize;
            let data: Vec<i32> = (0..len)
                .map(|_| rng.below(20_000) as i32 - 10_000)
                .collect();
            let threads = 1 + rng.below(11) as usize;
            let v = [1usize, 2, 4, 8, 16, 32][rng.below(6) as usize];
            let chunk = 1 + rng.below(1999) as usize;
            let expect = sum_sequential(&data);
            assert_eq!(sum_unrolled(&data, v), expect);
            assert_eq!(sum_pairwise(&data), expect);
            assert_eq!(parallel_sum(&data, threads), expect);
            assert_eq!(
                parallel_sum_unrolled(&data, threads, v, ChunkPolicy::StaticChunked(chunk)),
                expect
            );
        }
    }

    #[test]
    fn min_max_agree_with_iterators() {
        let mut rng = SplitMix64(0x2a11_0002);
        for _ in 0..CASES {
            let len = 1 + rng.below(10_000) as usize;
            let data: Vec<i8> = (0..len)
                .map(|_| (rng.below(200) as i64 - 100) as i8)
                .collect();
            let threads = 1 + rng.below(9) as usize;
            assert_eq!(
                parallel_min(&data, threads),
                *data.iter().min().unwrap() as i64
            );
            assert_eq!(
                parallel_max(&data, threads),
                *data.iter().max().unwrap() as i64
            );
        }
    }

    #[test]
    fn float_kernels_are_bounded() {
        let mut rng = SplitMix64(0x2a11_0003);
        for _ in 0..CASES {
            let len = 1 + rng.below(10_000) as usize;
            let data: Vec<f32> = (0..len).map(|_| (rng.unit() * 2.0 - 1.0) as f32).collect();
            let threads = 1 + rng.below(7) as usize;
            let exact: f64 = data.iter().map(|&x| x as f64).sum();
            let naive = sum_sequential(&data) as f64;
            let par = parallel_sum(&data, threads) as f64;
            let bound = f32::EPSILON as f64 * data.len() as f64 * data.len() as f64;
            assert!((par - exact).abs() <= bound.max(1e-6));
            assert!((naive - exact).abs() <= bound.max(1e-6));
            // Kahan in f64 over widened data reproduces the exact sum closely.
            let wide: Vec<f64> = data.iter().map(|&x| x as f64).collect();
            assert!((sum_kahan(&wide) - exact).abs() <= 1e-9 * exact.abs().max(1.0));
        }
    }

    #[test]
    fn pool_runs_each_job_once() {
        let mut rng = SplitMix64(0x2a11_0004);
        for _ in 0..16 {
            let threads = 1 + rng.below(7) as usize;
            let jobs = rng.below(200);
            let pool = ThreadPool::new(threads);
            let counter = Arc::new(AtomicU64::new(0));
            for _ in 0..jobs {
                let c = Arc::clone(&counter);
                pool.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait();
            assert_eq!(counter.load(Ordering::Relaxed), jobs);
        }
    }
}
