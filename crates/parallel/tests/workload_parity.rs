//! Bit-identity contract of the workload kernel layer (dot, inclusive
//! scan, GEMV), pinned as an integration suite mirroring
//! `simd_parity.rs`: for every available backend, every paper dtype
//! (including the i8 -> i64 widening case), every unroll factor and a
//! battery of awkward lengths, the vector kernels must reproduce the
//! scalar kernel's accumulation tree *exactly* — integer equality for
//! i32/i8, bit-for-bit float equality (not epsilon closeness) for
//! f32/f64.
//!
//! Deterministic and std-only: always runs, offline, on every
//! `cargo test`.

use ghr_parallel::{
    dot_sequential, dot_unrolled_with_backend, gemv_with_backend, scan_inclusive,
    scan_inclusive_with_backend, Backend,
};
use ghr_types::{Accum, Element};

/// Lengths hitting every edge of the kernel structure: empty, a single
/// element, shorter than any vector width, tails of every size modulo
/// V, exact multiples, and long runs through the main loop.
const LENGTHS: &[usize] = &[
    0, 1, 2, 3, 5, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 127, 255, 1000, 1337, 4096, 4099,
];

const VS: &[usize] = &[1, 2, 4, 8, 16, 32];

fn backends_under_test() -> Vec<Backend> {
    [Backend::Sse2, Backend::Avx2, Backend::Neon]
        .into_iter()
        .filter(|b| b.available())
        .collect()
}

/// Deterministic value stream with sign changes and enough dynamic
/// range that float rounding differences would be visible.
fn stream_a<T: Element>(n: usize) -> Vec<T> {
    (0..n as u64)
        .map(|i| T::from_index((i.wrapping_mul(2654435761) >> 7) % 509))
        .collect()
}

/// A second, decorrelated operand stream for the two-input kernels.
fn stream_b<T: Element>(n: usize) -> Vec<T> {
    (0..n as u64)
        .map(|i| T::from_index((i.wrapping_mul(40503).wrapping_add(11) >> 3) % 251))
        .collect()
}

fn assert_dot_parity<T: Element>(dtype: &str) {
    for &n in LENGTHS {
        let a = stream_a::<T>(n);
        let b = stream_b::<T>(n);
        for &v in VS {
            let scalar = dot_unrolled_with_backend(&a, &b, v, Backend::Scalar);
            for be in backends_under_test() {
                let got = dot_unrolled_with_backend(&a, &b, v, be);
                // `==` (not approx) — the contract is bit-identity.
                assert!(
                    got == scalar,
                    "{dtype} dot: backend {be} diverged from scalar at n={n} v={v}"
                );
            }
        }
        // The unrolled tree at V=1 is the sequential loop by construction.
        assert!(
            dot_unrolled_with_backend(&a, &b, 1, Backend::Scalar) == dot_sequential(&a, &b),
            "{dtype} dot: v=1 tree must equal the sequential oracle at n={n}"
        );
    }
}

fn assert_scan_parity<T: Element>(dtype: &str) {
    for &n in LENGTHS {
        let data = stream_a::<T>(n);
        let scalar = scan_inclusive_with_backend(&data, Backend::Scalar);
        // The default entry point resolves `Backend::active()`; under the
        // bit-identity contract it must agree with the scalar path no
        // matter which backend that is.
        assert!(
            scan_inclusive(&data) == scalar,
            "{dtype} scan: default entry point disagreed with the scalar path at n={n}"
        );
        for be in backends_under_test() {
            let got = scan_inclusive_with_backend(&data, be);
            assert!(
                got == scalar,
                "{dtype} scan: backend {be} diverged from scalar at n={n}"
            );
        }
        // Every prefix must equal the running sequential sum.
        let mut acc = <T::Acc as Accum>::zero();
        for (i, x) in data.iter().enumerate() {
            acc = acc + x.widen();
            assert!(
                scalar[i] == acc,
                "{dtype} scan: prefix {i} of {n} is not the running sum"
            );
        }
    }
}

fn assert_gemv_parity<T: Element>(dtype: &str) {
    // (rows, cols) shapes with awkward column counts around vector
    // widths and row counts exercising the per-row dispatch.
    const SHAPES: &[(usize, usize)] = &[
        (1, 1),
        (1, 7),
        (3, 5),
        (4, 16),
        (7, 33),
        (13, 64),
        (5, 127),
        (2, 1000),
        (3, 1337),
    ];
    for &(rows, cols) in SHAPES {
        let matrix = stream_a::<T>(rows * cols);
        let x = stream_b::<T>(cols);
        for &v in VS {
            let scalar = gemv_with_backend(&matrix, &x, v, Backend::Scalar);
            assert_eq!(scalar.len(), rows);
            // Each output row is exactly the scalar dot of that row.
            for (r, out) in scalar.iter().enumerate() {
                let row = &matrix[r * cols..(r + 1) * cols];
                assert!(
                    *out == dot_unrolled_with_backend(row, &x, v, Backend::Scalar),
                    "{dtype} gemv: row {r} is not the row dot at {rows}x{cols} v={v}"
                );
            }
            for be in backends_under_test() {
                let got = gemv_with_backend(&matrix, &x, v, be);
                assert!(
                    got == scalar,
                    "{dtype} gemv: backend {be} diverged from scalar at {rows}x{cols} v={v}"
                );
            }
        }
    }
}

#[test]
fn i32_dots_are_bit_identical_across_backends() {
    assert_dot_parity::<i32>("i32");
}

#[test]
fn i8_widening_dots_are_bit_identical_across_backends() {
    assert_dot_parity::<i8>("i8");
}

#[test]
fn f32_dots_are_bit_identical_across_backends() {
    assert_dot_parity::<f32>("f32");
}

#[test]
fn f64_dots_are_bit_identical_across_backends() {
    assert_dot_parity::<f64>("f64");
}

#[test]
fn i32_scans_are_bit_identical_across_backends() {
    assert_scan_parity::<i32>("i32");
}

#[test]
fn i8_widening_scans_are_bit_identical_across_backends() {
    assert_scan_parity::<i8>("i8");
}

#[test]
fn f32_scans_are_bit_identical_across_backends() {
    assert_scan_parity::<f32>("f32");
}

#[test]
fn f64_scans_are_bit_identical_across_backends() {
    assert_scan_parity::<f64>("f64");
}

#[test]
fn i32_gemvs_are_bit_identical_across_backends() {
    assert_gemv_parity::<i32>("i32");
}

#[test]
fn i8_widening_gemvs_are_bit_identical_across_backends() {
    assert_gemv_parity::<i8>("i8");
}

#[test]
fn f32_gemvs_are_bit_identical_across_backends() {
    assert_gemv_parity::<f32>("f32");
}

#[test]
fn f64_gemvs_are_bit_identical_across_backends() {
    assert_gemv_parity::<f64>("f64");
}
