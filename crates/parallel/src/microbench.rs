//! Std-only microbenchmark core: warmup + min-of-N timing of the *real*
//! reduction kernels on the build host.
//!
//! The repo's default workspace resolves with zero registry access, so this
//! harness deliberately uses nothing beyond `std::time::Instant` and
//! `std::hint::black_box` — no Criterion. It backs the `ghr bench` and
//! `ghr calibrate cpu` subcommands and the std-only targets in
//! `crates/bench`.
//!
//! Min-of-N is the right statistic for a throughput kernel on a noisy
//! machine: every source of interference (scheduler preemption, frequency
//! ramps, cache pollution from neighbours) only ever makes a repetition
//! *slower*, so the minimum is the best available estimate of the
//! undisturbed cost.

use crate::kernels::{sum_unrolled_with_backend, validate_v};
use crate::reduce::{parallel_sum_unrolled_on, ChunkPolicy};
use crate::simd::Backend;
use ghr_types::{DType, Element, GhrError, Result};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Run `f` for `warmup` untimed and `reps` timed repetitions; return the
/// minimum duration and the result of the final repetition.
///
/// This is the timing primitive every std-only bench target routes
/// through; `reps` must be at least 1.
pub fn time_min<R, F: FnMut() -> R>(warmup: usize, reps: usize, mut f: F) -> (Duration, R) {
    assert!(reps >= 1, "time_min needs at least one timed repetition");
    for _ in 0..warmup {
        black_box(f());
    }
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = black_box(f());
        best = best.min(t0.elapsed());
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

/// Shape of one microbenchmark point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchSpec {
    /// Element type (one of the paper's four input types).
    pub dtype: DType,
    /// Unroll factor `V` (power of two in 1..=32).
    pub v: usize,
    /// Worker threads; 1 times the single-threaded kernel directly (no
    /// pool, no fork-join overhead in the measurement).
    pub threads: usize,
    /// Elements per repetition.
    pub n: usize,
    /// Untimed warmup repetitions.
    pub warmup: usize,
    /// Timed repetitions (min taken).
    pub reps: usize,
}

/// One measured point: the kernel really ran on this machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The shape that was measured.
    pub spec: BenchSpec,
    /// Backend the timed kernel ran on (post-resolution, so `Scalar` when
    /// the requested backend does not cover the shape).
    pub backend: Backend,
    /// Bytes of input consumed per repetition.
    pub bytes: u64,
    /// Best (minimum) repetition time in nanoseconds.
    pub best_nanos: u128,
    /// Input bytes per second at the best repetition.
    pub bytes_per_sec: f64,
    /// Elements per second at the best repetition.
    pub elems_per_sec: f64,
    /// Whether the timed kernel's sum equals the scalar kernel's sum
    /// exactly (bit-identity contract of the SIMD layer).
    pub parity_with_scalar: bool,
}

impl Sample {
    /// Input throughput in GB/s (the paper's effective-bandwidth metric).
    pub fn gbps(&self) -> f64 {
        self.bytes_per_sec / 1e9
    }
}

/// The backend that will actually run for a given spec under `requested`:
/// the vector kernels silently fall back to scalar for shapes they do not
/// cover, and the report should say so.
fn effective_backend(requested: Backend, dtype: DType, v: usize) -> Backend {
    if requested.covers(dtype, v) {
        requested
    } else {
        Backend::Scalar
    }
}

/// Measure one (dtype, V, threads) point on `backend`, returning the
/// timing plus a scalar-parity verdict. Invalid shapes surface as
/// [`GhrError::InvalidArg`].
pub fn measure(spec: &BenchSpec, backend: Backend) -> Result<Sample> {
    validate_v(spec.v)?;
    if spec.threads == 0 {
        return Err(GhrError::arg("threads", "threads must be > 0"));
    }
    if spec.n == 0 {
        return Err(GhrError::arg("n", "element count must be > 0"));
    }
    match spec.dtype {
        DType::I32 => measure_typed::<i32>(spec, backend),
        DType::I8 => measure_typed::<i8>(spec, backend),
        DType::F32 => measure_typed::<f32>(spec, backend),
        DType::F64 => measure_typed::<f64>(spec, backend),
        DType::I64 => Err(GhrError::arg(
            "dtype",
            "i64 is an accumulator type, not a paper input case (use i8/i32/f32/f64)",
        )),
    }
}

fn measure_typed<T: Element>(spec: &BenchSpec, backend: Backend) -> Result<Sample> {
    let data: Vec<T> = (0..spec.n as u64).map(T::from_index).collect();
    let backend = effective_backend(backend, T::DTYPE, spec.v);
    let run = || -> T::Acc {
        if spec.threads == 1 {
            sum_unrolled_with_backend(&data, spec.v, backend)
        } else {
            parallel_sum_unrolled_on(&data, spec.threads, spec.v, ChunkPolicy::Static, backend)
                .expect("shape validated above")
        }
    };
    let (best, sum) = time_min(spec.warmup, spec.reps.max(1), run);
    let scalar_sum = if spec.threads == 1 {
        sum_unrolled_with_backend(&data, spec.v, Backend::Scalar)
    } else {
        parallel_sum_unrolled_on(
            &data,
            spec.threads,
            spec.v,
            ChunkPolicy::Static,
            Backend::Scalar,
        )
        .expect("shape validated above")
    };
    let bytes = spec.n as u64 * T::DTYPE.size_bytes();
    let secs = best.as_secs_f64().max(1e-12);
    Ok(Sample {
        spec: *spec,
        backend,
        bytes,
        best_nanos: best.as_nanos(),
        bytes_per_sec: bytes as f64 / secs,
        elems_per_sec: spec.n as f64 / secs,
        parity_with_scalar: sum == scalar_sum,
    })
}

/// A scalar/SIMD pair over the same shape: the comparison `ghr bench`
/// prints and the CI smoke test asserts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Pair {
    /// The point timed on the scalar unrolled kernel.
    pub scalar: Sample,
    /// The same point timed on `backend` (scalar again when uncovered).
    pub simd: Sample,
}

impl Pair {
    /// SIMD speedup over the scalar kernel (bytes/s ratio).
    pub fn speedup(&self) -> f64 {
        self.simd.bytes_per_sec / self.scalar.bytes_per_sec.max(1e-12)
    }

    /// Both measurements produced the exact same sum as the scalar kernel.
    pub fn parity(&self) -> bool {
        self.scalar.parity_with_scalar && self.simd.parity_with_scalar
    }
}

/// Measure one shape on both the scalar kernel and `backend`.
pub fn measure_pair(spec: &BenchSpec, backend: Backend) -> Result<Pair> {
    Ok(Pair {
        scalar: measure(spec, Backend::Scalar)?,
        simd: measure(spec, backend)?,
    })
}

/// The default `ghr bench` grid: the four paper cases crossed with unrolls
/// and thread counts. `quick` is the CI-friendly subset.
pub fn default_grid(quick: bool, host_threads: usize) -> Vec<BenchSpec> {
    let dtypes = [DType::I32, DType::I8, DType::F32, DType::F64];
    let vs: &[usize] = if quick { &[8] } else { &[1, 8, 32] };
    let threads: &[usize] = if quick {
        &[1]
    } else {
        &[1, host_threads.max(1)]
    };
    let n = if quick { 1 << 20 } else { 1 << 22 };
    let (warmup, reps) = if quick { (1, 3) } else { (2, 7) };
    let mut grid = Vec::new();
    for &dtype in &dtypes {
        for &v in vs {
            for &t in threads {
                grid.push(BenchSpec {
                    dtype,
                    v,
                    threads: t,
                    n,
                    warmup,
                    reps,
                });
            }
        }
    }
    // Dedup threads=1 twice when the host has a single core.
    grid.dedup();
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(dtype: DType, v: usize, threads: usize) -> BenchSpec {
        BenchSpec {
            dtype,
            v,
            threads,
            n: 10_000,
            warmup: 0,
            reps: 1,
        }
    }

    #[test]
    fn time_min_returns_result_and_positive_duration() {
        let (d, r) = time_min(1, 3, || (0..1000u64).sum::<u64>());
        assert_eq!(r, 499_500);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn measure_reports_throughput_and_parity() {
        for dtype in [DType::I32, DType::I8, DType::F32, DType::F64] {
            let s = measure(&quick_spec(dtype, 8, 1), Backend::widest()).unwrap();
            assert!(s.bytes_per_sec > 0.0, "{dtype}");
            assert!(s.elems_per_sec > 0.0, "{dtype}");
            assert!(s.parity_with_scalar, "{dtype}");
            assert_eq!(s.bytes, 10_000 * dtype.size_bytes());
        }
    }

    #[test]
    fn measure_parallel_path_and_pair() {
        let p = measure_pair(&quick_spec(DType::F32, 8, 3), Backend::widest()).unwrap();
        assert!(p.parity());
        assert!(p.speedup() > 0.0);
        assert_eq!(p.scalar.backend, Backend::Scalar);
    }

    #[test]
    fn uncovered_shapes_fall_back_to_scalar_backend() {
        let s = measure(&quick_spec(DType::F64, 1, 1), Backend::widest()).unwrap();
        assert_eq!(s.backend, Backend::Scalar);
        assert!(s.parity_with_scalar);
    }

    #[test]
    fn invalid_shapes_are_invalid_args() {
        assert!(measure(&quick_spec(DType::I32, 3, 1), Backend::Scalar).is_err());
        assert!(measure(&quick_spec(DType::I32, 8, 0), Backend::Scalar).is_err());
        assert!(measure(&quick_spec(DType::I64, 8, 1), Backend::Scalar).is_err());
        let zero = BenchSpec {
            n: 0,
            ..quick_spec(DType::I32, 8, 1)
        };
        assert!(measure(&zero, Backend::Scalar).is_err());
    }

    #[test]
    fn default_grid_shapes() {
        let quick = default_grid(true, 8);
        assert_eq!(quick.len(), 4); // one V, one thread count, four dtypes
        let full = default_grid(false, 8);
        assert_eq!(full.len(), 4 * 3 * 2);
        assert!(full.iter().all(|s| s.reps >= 3));
    }
}
