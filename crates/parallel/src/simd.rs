//! Vectorized reduction kernels behind runtime CPU-feature detection.
//!
//! The paper's CPU leg is an `omp parallel for simd reduction(+)` loop
//! (Listing 7); this module is the `simd` part made explicit: arch-gated
//! intrinsic kernels (x86_64 SSE2/AVX2, aarch64 NEON) for the four paper
//! cases, selected at runtime and falling back to the scalar unrolled loop
//! whenever the (backend, dtype, V) combination is not covered.
//!
//! # Bit-identity contract
//!
//! Every kernel here reproduces the *exact* accumulation tree of
//! [`crate::kernels::sum_unrolled`]: the `V` independent lane accumulators,
//! the pairwise (width-halving) combine, and the serial tail. A vector
//! register of `W` lanes simply holds `W` of the `V` accumulators, so each
//! vector add performs the same per-lane scalar additions in the same
//! order; once one register remains its lanes are spilled to a stack array
//! and the remaining `W → 1` combine plus the tail run through the *same*
//! scalar code path. Since SSE/AVX/NEON lane arithmetic is IEEE-754
//! compliant (no FMA contraction, no reassociation), float results are
//! bit-identical to the scalar kernel, and every determinism/caching
//! invariant the engine relies on survives. (Integer lane adds wrap; the
//! scalar path would panic on overflow in debug builds — the study's
//! workloads never overflow, and release semantics agree.)
//!
//! # Selection
//!
//! [`Backend::active`] picks the widest available backend; the `GHR_SIMD`
//! environment variable (`off|sse2|avx2|neon|auto`) is an escape hatch that
//! forces a backend (falling back to scalar when the forced backend is
//! unavailable on the host or does not cover a given dtype × V shape).

use ghr_types::{DType, Element};

/// A vector instruction set the kernels can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Scalar fallback — the plain unrolled loop in [`crate::kernels`].
    Scalar,
    /// x86_64 SSE2 (128-bit; baseline on every x86_64 CPU).
    Sse2,
    /// x86_64 AVX2 (256-bit; runtime-detected).
    Avx2,
    /// aarch64 Advanced SIMD (128-bit; baseline on every aarch64 CPU).
    Neon,
}

impl Backend {
    /// Short lowercase label (`scalar`, `sse2`, `avx2`, `neon`).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// Whether this backend's instructions exist on the running host.
    pub fn available(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => true, // baseline feature of the x86_64 ABI
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => true, // Advanced SIMD is mandatory on aarch64
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// The widest backend available on this host (ignoring `GHR_SIMD`).
    pub fn widest() -> Backend {
        if Backend::Avx2.available() {
            Backend::Avx2
        } else if Backend::Sse2.available() {
            Backend::Sse2
        } else if Backend::Neon.available() {
            Backend::Neon
        } else {
            Backend::Scalar
        }
    }

    /// The backend selected for this invocation: `GHR_SIMD` if set (falling
    /// back to scalar when the forced backend is unavailable on this host),
    /// otherwise the widest available one.
    ///
    /// The environment variable is re-read on every call so tests and the
    /// CLI can flip it without process restarts; one `getenv` per top-level
    /// reduction call is noise next to the reduction itself.
    pub fn active() -> Backend {
        match Mode::from_env() {
            Mode::Auto => Backend::widest(),
            Mode::Off => Backend::Scalar,
            Mode::Force(b) => {
                if b.available() {
                    b
                } else {
                    Backend::Scalar
                }
            }
        }
    }

    /// Whether this backend has a vector kernel for `dtype` unrolled by
    /// `v`. `v` must already be a valid unroll (power of two in 1..=32);
    /// shapes narrower than the vector registers stay on the scalar path.
    pub fn covers(self, dtype: DType, v: usize) -> bool {
        match self {
            Backend::Scalar => false,
            Backend::Sse2 => match dtype {
                DType::I32 | DType::F32 => v >= 4,
                DType::F64 => v >= 2,
                // i8 -> i64 sign extension needs SSE4.1+; not worth a
                // third x86 tier when AVX2 covers every modern part.
                DType::I8 => false,
                DType::I64 => false,
            },
            Backend::Avx2 => match dtype {
                DType::I32 | DType::F32 => v >= 8,
                DType::F64 => v >= 4,
                DType::I8 => v >= 4,
                DType::I64 => false,
            },
            Backend::Neon => match dtype {
                DType::I32 | DType::F32 => v >= 4,
                DType::F64 => v >= 2,
                DType::I8 => v >= 8,
                DType::I64 => false,
            },
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Parsed `GHR_SIMD` setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Unset, empty, `auto`, or unrecognized: pick the widest backend.
    Auto,
    /// `off` / `scalar` / `0`: force the scalar path.
    Off,
    /// An explicit backend name.
    Force(Backend),
}

impl Mode {
    fn from_env() -> Mode {
        match std::env::var("GHR_SIMD") {
            Ok(v) => Mode::parse(&v),
            Err(_) => Mode::Auto,
        }
    }

    fn parse(value: &str) -> Mode {
        match value.to_ascii_lowercase().as_str() {
            "" | "auto" => Mode::Auto,
            "off" | "scalar" | "0" => Mode::Off,
            "sse2" => Mode::Force(Backend::Sse2),
            "avx2" => Mode::Force(Backend::Avx2),
            "neon" => Mode::Force(Backend::Neon),
            // An unknown value must not silently change numerical paths;
            // auto is the only safe reading (and `report()` surfaces it).
            _ => Mode::Auto,
        }
    }
}

/// One-line description of the selected backend for `--stats` blocks:
/// which kernel backend runs, and whether `GHR_SIMD` forced it.
///
/// Examples: `avx2 (auto)`, `scalar (forced via GHR_SIMD=off)`,
/// `scalar (GHR_SIMD=neon unavailable on this host)`.
pub fn report() -> String {
    let active = Backend::active();
    match std::env::var("GHR_SIMD") {
        Err(_) => format!("{active} (auto)"),
        Ok(v) => match Mode::parse(&v) {
            Mode::Auto if v.is_empty() || v.eq_ignore_ascii_case("auto") => {
                format!("{active} (auto)")
            }
            Mode::Auto => format!("{active} (auto; unrecognized GHR_SIMD={v:?} ignored)"),
            Mode::Off => format!("{active} (forced via GHR_SIMD={v})"),
            Mode::Force(b) if b.available() => format!("{active} (forced via GHR_SIMD={v})"),
            Mode::Force(_) => format!("{active} (GHR_SIMD={v} unavailable on this host)"),
        },
    }
}

/// Sum `data` with the `v`-lane accumulation tree on `backend`, if that
/// backend has a kernel for this dtype × V shape. `None` means "use the
/// scalar path"; `Some` is bit-identical to what the scalar path returns.
///
/// `v` must already be validated (power of two in 1..=32).
pub(crate) fn simd_sum<T: Element>(data: &[T], v: usize, backend: Backend) -> Option<T::Acc> {
    debug_assert!(matches!(v, 1 | 2 | 4 | 8 | 16 | 32));
    if !backend.covers(T::DTYPE, v) {
        return None;
    }
    #[cfg(target_arch = "x86_64")]
    {
        return x86::dispatch::<T>(data, v, backend);
    }
    #[cfg(target_arch = "aarch64")]
    {
        return neon::dispatch::<T>(data, v, backend);
    }
    #[allow(unreachable_code)]
    None
}

/// Reinterpret a slice of `T` as a slice of `U` once `T == U` is proven by
/// `TypeId`. Used to bridge the generic [`Element`] API to the concrete
/// per-type kernels without unstable specialization.
#[inline]
pub(crate) fn cast_slice<T: 'static, U: 'static>(data: &[T]) -> Option<&[U]> {
    if std::any::TypeId::of::<T>() == std::any::TypeId::of::<U>() {
        // SAFETY: T and U are the same type, so layout and validity match.
        Some(unsafe { &*(data as *const [T] as *const [U]) })
    } else {
        None
    }
}

/// Convert a concrete kernel result back into the generic accumulator type
/// after the `TypeId` proof above. Panics (unreachably) on a type mismatch.
#[inline]
pub(crate) fn cast_acc<A: Copy + 'static, B: Copy + 'static>(a: A) -> B {
    assert_eq!(std::any::TypeId::of::<A>(), std::any::TypeId::of::<B>());
    // SAFETY: A and B are the same type (checked above), and both are Copy.
    unsafe { std::mem::transmute_copy(&a) }
}

/// The scalar epilogue shared by every vector kernel: the final `W -> 1`
/// pairwise combine over the spilled lane accumulators, then the serial
/// tail — byte-for-byte the same arithmetic the scalar kernel performs.
#[inline]
fn combine_lanes_and_tail<T: Element>(lanes: &mut [T::Acc], tail: &[T]) -> T::Acc {
    debug_assert!(lanes.len().is_power_of_two());
    let mut width = lanes.len();
    while width > 1 {
        width /= 2;
        for i in 0..width {
            lanes[i] = lanes[i] + lanes[i + width];
        }
    }
    let mut sum = lanes[0];
    for &x in tail {
        sum = sum + x.widen();
    }
    sum
}

/// The part of `data` the vector main loop does not consume.
#[inline]
pub(crate) fn tail_of<T>(data: &[T], v: usize) -> &[T] {
    &data[data.len() - data.len() % v..]
}

#[cfg(target_arch = "x86_64")]
// The register-load loops index `vacc[j]` with an explicit `j` so they
// visibly mirror the scalar kernel's accumulator indexing (the bit-identity
// contract); an iterator form would obscure the correspondence.
#[allow(clippy::needless_range_loop)]
mod x86 {
    use super::{cast_acc, cast_slice, combine_lanes_and_tail, tail_of, Backend};
    use ghr_types::{DType, Element};
    use std::arch::x86_64::*;

    pub(super) fn dispatch<T: Element>(data: &[T], v: usize, backend: Backend) -> Option<T::Acc> {
        // `covers()` already vetted (backend, dtype, v); here we only
        // bridge the generic types to the concrete kernels.
        match (backend, T::DTYPE) {
            (Backend::Sse2, DType::I32) => {
                // SAFETY: SSE2 is baseline on x86_64.
                cast_slice::<T, i32>(data).map(|d| cast_acc(unsafe { sum_i32_sse2(d, v) }))
            }
            (Backend::Sse2, DType::F32) => {
                cast_slice::<T, f32>(data).map(|d| cast_acc(unsafe { sum_f32_sse2(d, v) }))
            }
            (Backend::Sse2, DType::F64) => {
                cast_slice::<T, f64>(data).map(|d| cast_acc(unsafe { sum_f64_sse2(d, v) }))
            }
            // SAFETY (all AVX2 arms): `covers` + `available` guarantee the
            // avx2 feature was runtime-detected before we get here.
            (Backend::Avx2, DType::I32) => {
                cast_slice::<T, i32>(data).map(|d| cast_acc(unsafe { sum_i32_avx2(d, v) }))
            }
            (Backend::Avx2, DType::F32) => {
                cast_slice::<T, f32>(data).map(|d| cast_acc(unsafe { sum_f32_avx2(d, v) }))
            }
            (Backend::Avx2, DType::F64) => {
                cast_slice::<T, f64>(data).map(|d| cast_acc(unsafe { sum_f64_avx2(d, v) }))
            }
            (Backend::Avx2, DType::I8) => {
                cast_slice::<T, i8>(data).map(|d| cast_acc(unsafe { sum_i8_avx2(d, v) }))
            }
            _ => None,
        }
    }

    /// SSE2 `i32 -> i32`, 4 lanes per register.
    unsafe fn sum_i32_sse2(data: &[i32], v: usize) -> i32 {
        const W: usize = 4;
        let nv = v / W;
        let mut vacc = [_mm_setzero_si128(); 8]; // v=32 -> 8 registers
        for chunk in data.chunks_exact(v) {
            let p = chunk.as_ptr();
            for j in 0..nv {
                let x = _mm_loadu_si128(p.add(j * W) as *const __m128i);
                vacc[j] = _mm_add_epi32(vacc[j], x);
            }
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = _mm_add_epi32(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0i32; W];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, vacc[0]);
        combine_lanes_and_tail::<i32>(&mut lanes, tail_of(data, v))
    }

    /// SSE2 `f32 -> f32`, 4 lanes per register.
    unsafe fn sum_f32_sse2(data: &[f32], v: usize) -> f32 {
        const W: usize = 4;
        let nv = v / W;
        let mut vacc = [_mm_setzero_ps(); 8];
        for chunk in data.chunks_exact(v) {
            let p = chunk.as_ptr();
            for j in 0..nv {
                vacc[j] = _mm_add_ps(vacc[j], _mm_loadu_ps(p.add(j * W)));
            }
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = _mm_add_ps(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0f32; W];
        _mm_storeu_ps(lanes.as_mut_ptr(), vacc[0]);
        combine_lanes_and_tail::<f32>(&mut lanes, tail_of(data, v))
    }

    /// SSE2 `f64 -> f64`, 2 lanes per register.
    unsafe fn sum_f64_sse2(data: &[f64], v: usize) -> f64 {
        const W: usize = 2;
        let nv = v / W;
        let mut vacc = [_mm_setzero_pd(); 16];
        for chunk in data.chunks_exact(v) {
            let p = chunk.as_ptr();
            for j in 0..nv {
                vacc[j] = _mm_add_pd(vacc[j], _mm_loadu_pd(p.add(j * W)));
            }
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = _mm_add_pd(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0f64; W];
        _mm_storeu_pd(lanes.as_mut_ptr(), vacc[0]);
        combine_lanes_and_tail::<f64>(&mut lanes, tail_of(data, v))
    }

    /// AVX2 `i32 -> i32`, 8 lanes per register.
    #[target_feature(enable = "avx2")]
    unsafe fn sum_i32_avx2(data: &[i32], v: usize) -> i32 {
        const W: usize = 8;
        let nv = v / W;
        let mut vacc = [_mm256_setzero_si256(); 4];
        for chunk in data.chunks_exact(v) {
            let p = chunk.as_ptr();
            for j in 0..nv {
                let x = _mm256_loadu_si256(p.add(j * W) as *const __m256i);
                vacc[j] = _mm256_add_epi32(vacc[j], x);
            }
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = _mm256_add_epi32(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0i32; W];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, vacc[0]);
        combine_lanes_and_tail::<i32>(&mut lanes, tail_of(data, v))
    }

    /// AVX2 `f32 -> f32`, 8 lanes per register.
    #[target_feature(enable = "avx2")]
    unsafe fn sum_f32_avx2(data: &[f32], v: usize) -> f32 {
        const W: usize = 8;
        let nv = v / W;
        let mut vacc = [_mm256_setzero_ps(); 4];
        for chunk in data.chunks_exact(v) {
            let p = chunk.as_ptr();
            for j in 0..nv {
                vacc[j] = _mm256_add_ps(vacc[j], _mm256_loadu_ps(p.add(j * W)));
            }
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = _mm256_add_ps(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0f32; W];
        _mm256_storeu_ps(lanes.as_mut_ptr(), vacc[0]);
        combine_lanes_and_tail::<f32>(&mut lanes, tail_of(data, v))
    }

    /// AVX2 `f64 -> f64`, 4 lanes per register.
    #[target_feature(enable = "avx2")]
    unsafe fn sum_f64_avx2(data: &[f64], v: usize) -> f64 {
        const W: usize = 4;
        let nv = v / W;
        let mut vacc = [_mm256_setzero_pd(); 8];
        for chunk in data.chunks_exact(v) {
            let p = chunk.as_ptr();
            for j in 0..nv {
                vacc[j] = _mm256_add_pd(vacc[j], _mm256_loadu_pd(p.add(j * W)));
            }
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = _mm256_add_pd(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0f64; W];
        _mm256_storeu_pd(lanes.as_mut_ptr(), vacc[0]);
        combine_lanes_and_tail::<f64>(&mut lanes, tail_of(data, v))
    }

    /// AVX2 `i8 -> i64` with widening: each 4-byte group of elements is
    /// sign-extended to 4 x i64 lanes (`vpmovsxbq`) and accumulated, so
    /// accumulator `i` still sums exactly the elements at positions
    /// `i (mod v)` — the paper's C2 widening case.
    #[target_feature(enable = "avx2")]
    unsafe fn sum_i8_avx2(data: &[i8], v: usize) -> i64 {
        const W: usize = 4; // i64 lanes per 256-bit register
        let nv = v / W;
        let mut vacc = [_mm256_setzero_si256(); 8];
        for chunk in data.chunks_exact(v) {
            let p = chunk.as_ptr();
            for j in 0..nv {
                // 4 i8 elements -> low 32 bits of an xmm -> 4 x i64.
                let quad = (p.add(j * W) as *const i32).read_unaligned();
                let x = _mm256_cvtepi8_epi64(_mm_cvtsi32_si128(quad));
                vacc[j] = _mm256_add_epi64(vacc[j], x);
            }
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = _mm256_add_epi64(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0i64; W];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, vacc[0]);
        combine_lanes_and_tail::<i8>(&mut lanes, tail_of(data, v))
    }
}

#[cfg(target_arch = "aarch64")]
// Same rationale as `x86`: explicit `vacc[j]` indexing mirrors the scalar
// kernel's accumulator layout.
#[allow(clippy::needless_range_loop)]
mod neon {
    use super::{cast_acc, cast_slice, combine_lanes_and_tail, tail_of, Backend};
    use ghr_types::{DType, Element};
    use std::arch::aarch64::*;

    pub(super) fn dispatch<T: Element>(data: &[T], v: usize, backend: Backend) -> Option<T::Acc> {
        if backend != Backend::Neon {
            return None;
        }
        // SAFETY (all arms): Advanced SIMD is a baseline aarch64 feature.
        match T::DTYPE {
            DType::I32 => {
                cast_slice::<T, i32>(data).map(|d| cast_acc(unsafe { sum_i32_neon(d, v) }))
            }
            DType::F32 => {
                cast_slice::<T, f32>(data).map(|d| cast_acc(unsafe { sum_f32_neon(d, v) }))
            }
            DType::F64 => {
                cast_slice::<T, f64>(data).map(|d| cast_acc(unsafe { sum_f64_neon(d, v) }))
            }
            DType::I8 => cast_slice::<T, i8>(data).map(|d| cast_acc(unsafe { sum_i8_neon(d, v) })),
            DType::I64 => None,
        }
    }

    /// NEON `i32 -> i32`, 4 lanes per register.
    unsafe fn sum_i32_neon(data: &[i32], v: usize) -> i32 {
        const W: usize = 4;
        let nv = v / W;
        let mut vacc = [vdupq_n_s32(0); 8];
        for chunk in data.chunks_exact(v) {
            let p = chunk.as_ptr();
            for j in 0..nv {
                vacc[j] = vaddq_s32(vacc[j], vld1q_s32(p.add(j * W)));
            }
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = vaddq_s32(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0i32; W];
        vst1q_s32(lanes.as_mut_ptr(), vacc[0]);
        combine_lanes_and_tail::<i32>(&mut lanes, tail_of(data, v))
    }

    /// NEON `f32 -> f32`, 4 lanes per register.
    unsafe fn sum_f32_neon(data: &[f32], v: usize) -> f32 {
        const W: usize = 4;
        let nv = v / W;
        let mut vacc = [vdupq_n_f32(0.0); 8];
        for chunk in data.chunks_exact(v) {
            let p = chunk.as_ptr();
            for j in 0..nv {
                vacc[j] = vaddq_f32(vacc[j], vld1q_f32(p.add(j * W)));
            }
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = vaddq_f32(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0f32; W];
        vst1q_f32(lanes.as_mut_ptr(), vacc[0]);
        combine_lanes_and_tail::<f32>(&mut lanes, tail_of(data, v))
    }

    /// NEON `f64 -> f64`, 2 lanes per register.
    unsafe fn sum_f64_neon(data: &[f64], v: usize) -> f64 {
        const W: usize = 2;
        let nv = v / W;
        let mut vacc = [vdupq_n_f64(0.0); 16];
        for chunk in data.chunks_exact(v) {
            let p = chunk.as_ptr();
            for j in 0..nv {
                vacc[j] = vaddq_f64(vacc[j], vld1q_f64(p.add(j * W)));
            }
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = vaddq_f64(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0f64; W];
        vst1q_f64(lanes.as_mut_ptr(), vacc[0]);
        combine_lanes_and_tail::<f64>(&mut lanes, tail_of(data, v))
    }

    /// NEON `i8 -> i64` with widening: each 8-element group is widened
    /// through the `s8 -> s16 -> s32 -> s64` `vmovl` chain into four
    /// `int64x2` accumulators, preserving the lane <-> `i (mod v)` mapping.
    unsafe fn sum_i8_neon(data: &[i8], v: usize) -> i64 {
        const W: usize = 2; // i64 lanes per 128-bit register
        let nv = v / W; // up to 16 registers at v = 32
        let groups = v / 8; // 8-element widening groups per chunk
        let mut vacc = [vdupq_n_s64(0); 16];
        for chunk in data.chunks_exact(v) {
            let p = chunk.as_ptr();
            for g in 0..groups {
                let b = vld1_s8(p.add(g * 8)); // 8 x i8
                let h = vmovl_s8(b); // 8 x i16
                let w0 = vmovl_s16(vget_low_s16(h)); // 4 x i32 (lanes 0..4)
                let w1 = vmovl_s16(vget_high_s16(h)); // 4 x i32 (lanes 4..8)
                let base = g * 4; // 4 int64x2 regs per group
                vacc[base] = vaddq_s64(vacc[base], vmovl_s32(vget_low_s32(w0)));
                vacc[base + 1] = vaddq_s64(vacc[base + 1], vmovl_s32(vget_high_s32(w0)));
                vacc[base + 2] = vaddq_s64(vacc[base + 2], vmovl_s32(vget_low_s32(w1)));
                vacc[base + 3] = vaddq_s64(vacc[base + 3], vmovl_s32(vget_high_s32(w1)));
            }
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = vaddq_s64(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0i64; W];
        vst1q_s64(lanes.as_mut_ptr(), vacc[0]);
        combine_lanes_and_tail::<i8>(&mut lanes, tail_of(data, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_display() {
        assert_eq!(Backend::Scalar.label(), "scalar");
        assert_eq!(Backend::Avx2.to_string(), "avx2");
    }

    #[test]
    fn scalar_is_always_available_and_covers_nothing() {
        assert!(Backend::Scalar.available());
        for dtype in [DType::I8, DType::I32, DType::F32, DType::F64] {
            for v in [1, 2, 4, 8, 16, 32] {
                assert!(!Backend::Scalar.covers(dtype, v));
            }
        }
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(Mode::parse("auto"), Mode::Auto);
        assert_eq!(Mode::parse(""), Mode::Auto);
        assert_eq!(Mode::parse("OFF"), Mode::Off);
        assert_eq!(Mode::parse("scalar"), Mode::Off);
        assert_eq!(Mode::parse("sse2"), Mode::Force(Backend::Sse2));
        assert_eq!(Mode::parse("AVX2"), Mode::Force(Backend::Avx2));
        assert_eq!(Mode::parse("neon"), Mode::Force(Backend::Neon));
        assert_eq!(Mode::parse("gibberish"), Mode::Auto);
    }

    #[test]
    fn narrow_v_stays_scalar() {
        // No backend may claim a shape narrower than its registers.
        for b in [Backend::Sse2, Backend::Avx2, Backend::Neon] {
            assert!(!b.covers(DType::F64, 1), "{b}");
            assert!(!b.covers(DType::I32, 2), "{b}");
            assert!(!b.covers(DType::I8, 2), "{b}");
        }
        assert!(!Backend::Avx2.covers(DType::F32, 4));
    }

    #[test]
    fn widest_is_available() {
        assert!(Backend::widest().available());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_is_baseline_on_x86_64() {
        assert!(Backend::Sse2.available());
        assert!(Backend::Sse2.covers(DType::I32, 8));
        assert!(!Backend::Neon.available());
    }

    #[test]
    fn report_names_a_backend() {
        let r = report();
        assert!(
            ["scalar", "sse2", "avx2", "neon"]
                .iter()
                .any(|b| r.starts_with(b)),
            "{r}"
        );
    }
}
