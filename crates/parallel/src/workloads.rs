//! Single-threaded kernels for the non-reduction workloads (dot, scan,
//! GEMV) — the functional oracles behind the descriptor-timed pipeline.
//!
//! Each workload follows the same structure as the sum kernels in
//! [`crate::kernels`]: a scalar accumulation tree is the canonical
//! semantics (`V` independent lane accumulators, pairwise combine, serial
//! tail), and the vector paths reproduce it **bit-identically** — a vector
//! register simply holds `W` of the `V` lanes and performs the same
//! per-lane operations in the same order, with separate multiply and add
//! instructions for floats (no FMA contraction).
//!
//! The inclusive scan is inherently sequential per element, so its
//! canonical semantics is the plain running sum; vector scan paths exist
//! only for integer accumulators (wrapping addition is associative, so the
//! in-register Hillis–Steele order is exactly the sequential result).
//! Float scans always take the scalar path — any in-register reassociation
//! would change the rounding — and [`Backend::covers_scan`] says so.

use crate::simd::{cast_acc, cast_slice, tail_of, Backend};
use ghr_types::{Accum, DType, Element, GhrError, Result};

use crate::kernels::validate_v;

// ---------------------------------------------------------------------
// Coverage: which (backend, dtype, V) shapes have vector kernels
// ---------------------------------------------------------------------

impl Backend {
    /// Whether this backend has a vector dot-product kernel for `dtype`
    /// unrolled by `v`. Narrower than the sum coverage: SSE2 lacks a
    /// 32-bit integer multiply, and the `i8 → i64` widening multiply chain
    /// is not worth a vector path on any tier.
    pub fn covers_dot(self, dtype: DType, v: usize) -> bool {
        match self {
            Backend::Scalar => false,
            Backend::Sse2 => match dtype {
                DType::F32 => v >= 4,
                DType::F64 => v >= 2,
                // `_mm_mullo_epi32` is SSE4.1; stay scalar below AVX2.
                DType::I8 | DType::I32 | DType::I64 => false,
            },
            Backend::Avx2 => match dtype {
                DType::I32 | DType::F32 => v >= 8,
                DType::F64 => v >= 4,
                DType::I8 | DType::I64 => false,
            },
            Backend::Neon => match dtype {
                DType::I32 | DType::F32 => v >= 4,
                DType::F64 => v >= 2,
                DType::I8 | DType::I64 => false,
            },
        }
    }

    /// Whether this backend has a vector inclusive-scan kernel for `dtype`.
    ///
    /// Only integer accumulation is reassociation-safe (wrapping adds), so
    /// floats always scan on the scalar path to keep the sequential
    /// rounding; `i8`'s widened `i64` lanes lack the in-register shifts.
    pub fn covers_scan(self, dtype: DType) -> bool {
        match self {
            Backend::Scalar => false,
            // AVX2 hosts run the 128-bit kernel (SSE2 is x86_64 baseline).
            Backend::Sse2 | Backend::Avx2 | Backend::Neon => dtype == DType::I32,
        }
    }
}

// ---------------------------------------------------------------------
// Dot product
// ---------------------------------------------------------------------

/// Serial dot product: `Σ widen(a[i]) * widen(b[i])`, products formed in
/// the accumulator domain (so C2's `i8` inputs multiply as `i64`).
///
/// Panics if the operand lengths differ.
pub fn dot_sequential<T: Element>(a: &[T], b: &[T]) -> T::Acc {
    assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    let mut sum = T::Acc::zero();
    for (&x, &y) in a.iter().zip(b) {
        sum = sum + x.widen() * y.widen();
    }
    sum
}

/// Dot product with the `v`-lane accumulation tree (the workload analogue
/// of [`crate::kernels::sum_unrolled`]): `v` independent multiply-add lane
/// accumulators, pairwise combine, serial tail. Runs on the vector kernels
/// when [`Backend::active`] covers the shape; results are bit-identical
/// across backends by construction.
///
/// Panics on invalid `v` or mismatched lengths; see [`try_dot_unrolled`].
pub fn dot_unrolled<T: Element>(a: &[T], b: &[T], v: usize) -> T::Acc {
    try_dot_unrolled(a, b, v).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`dot_unrolled`].
pub fn try_dot_unrolled<T: Element>(a: &[T], b: &[T], v: usize) -> Result<T::Acc> {
    validate_v(v)?;
    if a.len() != b.len() {
        return Err(GhrError::arg(
            "dot",
            format!("operand lengths differ ({} vs {})", a.len(), b.len()),
        ));
    }
    Ok(dot_unrolled_on(a, b, v, Backend::active()))
}

/// [`dot_unrolled`] with an explicitly chosen backend (parity tests, and
/// callers that resolve the backend once outside a loop).
pub fn dot_unrolled_with_backend<T: Element>(
    a: &[T],
    b: &[T],
    v: usize,
    backend: Backend,
) -> T::Acc {
    validate_v(v).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    dot_unrolled_on(a, b, v, backend)
}

fn dot_unrolled_on<T: Element>(a: &[T], b: &[T], v: usize, backend: Backend) -> T::Acc {
    if let Some(sum) = simd_dot(a, b, v, backend) {
        return sum;
    }
    match v {
        1 => dot_sequential(a, b),
        2 => dot_unrolled_const::<T, 2>(a, b),
        4 => dot_unrolled_const::<T, 4>(a, b),
        8 => dot_unrolled_const::<T, 8>(a, b),
        16 => dot_unrolled_const::<T, 16>(a, b),
        32 => dot_unrolled_const::<T, 32>(a, b),
        _ => unreachable!(),
    }
}

/// Monomorphized scalar tree — the canonical dot semantics.
fn dot_unrolled_const<T: Element, const LANES: usize>(a: &[T], b: &[T]) -> T::Acc {
    let mut acc = [T::Acc::zero(); LANES];
    let ca = a.chunks_exact(LANES);
    let ta = ca.remainder();
    let cb = b.chunks_exact(LANES);
    let tb = cb.remainder();
    for (xc, yc) in ca.zip(cb) {
        for (l, (&x, &y)) in acc.iter_mut().zip(xc.iter().zip(yc)) {
            *l = *l + x.widen() * y.widen();
        }
    }
    combine_lanes_and_dot_tail::<T>(&mut acc, ta, tb)
}

/// Shared epilogue of every dot kernel (scalar and vector): pairwise lane
/// combine, then the serial multiply-add tail.
fn combine_lanes_and_dot_tail<T: Element>(lanes: &mut [T::Acc], ta: &[T], tb: &[T]) -> T::Acc {
    debug_assert!(lanes.len().is_power_of_two());
    let mut width = lanes.len();
    while width > 1 {
        width /= 2;
        for i in 0..width {
            lanes[i] = lanes[i] + lanes[i + width];
        }
    }
    let mut sum = lanes[0];
    for (&x, &y) in ta.iter().zip(tb) {
        sum = sum + x.widen() * y.widen();
    }
    sum
}

/// Vector dot dispatch; `None` means "use the scalar tree".
fn simd_dot<T: Element>(a: &[T], b: &[T], v: usize, backend: Backend) -> Option<T::Acc> {
    debug_assert!(matches!(v, 1 | 2 | 4 | 8 | 16 | 32));
    if !backend.covers_dot(T::DTYPE, v) {
        return None;
    }
    #[cfg(target_arch = "x86_64")]
    {
        return x86::dispatch_dot::<T>(a, b, v, backend);
    }
    #[cfg(target_arch = "aarch64")]
    {
        return neon::dispatch_dot::<T>(a, b, v, backend);
    }
    #[allow(unreachable_code)]
    None
}

// ---------------------------------------------------------------------
// Inclusive scan
// ---------------------------------------------------------------------

/// Inclusive prefix sum into the accumulator domain:
/// `out[i] = widen(x[0]) + ... + widen(x[i])`, in strict left-to-right
/// order. Vector paths (integer accumulators only — see
/// [`Backend::covers_scan`]) reproduce this exactly.
pub fn scan_inclusive<T: Element>(data: &[T]) -> Vec<T::Acc> {
    scan_inclusive_with_backend(data, Backend::active())
}

/// [`scan_inclusive`] with an explicitly chosen backend.
pub fn scan_inclusive_with_backend<T: Element>(data: &[T], backend: Backend) -> Vec<T::Acc> {
    let mut out = Vec::with_capacity(data.len());
    if backend.covers_scan(T::DTYPE) && simd_scan::<T>(data, &mut out, backend) {
        return out;
    }
    let mut acc = T::Acc::zero();
    for &x in data {
        acc = acc + x.widen();
        out.push(acc);
    }
    out
}

/// Vector scan dispatch; returns `false` (leaving `out` empty) when no
/// kernel applies and the caller should take the scalar path.
#[allow(unused_variables)]
fn simd_scan<T: Element>(data: &[T], out: &mut Vec<T::Acc>, backend: Backend) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        return x86::dispatch_scan::<T>(data, out, backend);
    }
    #[cfg(target_arch = "aarch64")]
    {
        return neon::dispatch_scan::<T>(data, out, backend);
    }
    #[allow(unreachable_code)]
    false
}

// ---------------------------------------------------------------------
// GEMV (row-major matrix × vector)
// ---------------------------------------------------------------------

/// Row-major GEMV: `out[r] = dot(matrix[r*cols .. (r+1)*cols], x)` with
/// `cols = x.len()`, each row using the same `v`-lane dot tree (so GEMV
/// parity reduces to dot parity row by row).
///
/// Panics on invalid `v`, empty `x`, or a matrix length that is not a
/// multiple of `x.len()`; see [`try_gemv`].
pub fn gemv<T: Element>(matrix: &[T], x: &[T], v: usize) -> Vec<T::Acc> {
    try_gemv(matrix, x, v).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`gemv`].
pub fn try_gemv<T: Element>(matrix: &[T], x: &[T], v: usize) -> Result<Vec<T::Acc>> {
    validate_v(v)?;
    if x.is_empty() {
        return Err(GhrError::arg("gemv", "x must be non-empty"));
    }
    if !matrix.len().is_multiple_of(x.len()) {
        return Err(GhrError::arg(
            "gemv",
            format!(
                "matrix length {} is not a multiple of cols {}",
                matrix.len(),
                x.len()
            ),
        ));
    }
    Ok(gemv_with_backend(matrix, x, v, Backend::active()))
}

/// [`gemv`] with an explicitly chosen backend (resolved once for all rows).
pub fn gemv_with_backend<T: Element>(
    matrix: &[T],
    x: &[T],
    v: usize,
    backend: Backend,
) -> Vec<T::Acc> {
    matrix
        .chunks_exact(x.len())
        .map(|row| dot_unrolled_on(row, x, v, backend))
        .collect()
}

// ---------------------------------------------------------------------
// x86_64 kernels
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
// Explicit `vacc[j]` indexing mirrors the scalar tree's accumulator layout
// (the bit-identity contract), as in `simd.rs`.
#[allow(clippy::needless_range_loop)]
mod x86 {
    use super::{cast_acc, cast_slice, combine_lanes_and_dot_tail, tail_of, Backend};
    use ghr_types::{DType, Element};
    use std::arch::x86_64::*;

    pub(super) fn dispatch_dot<T: Element>(
        a: &[T],
        b: &[T],
        v: usize,
        backend: Backend,
    ) -> Option<T::Acc> {
        match (backend, T::DTYPE) {
            // SAFETY: SSE2 is baseline on x86_64.
            (Backend::Sse2, DType::F32) => Some(cast_acc(unsafe {
                dot_f32_sse2(cast_slice::<T, f32>(a)?, cast_slice::<T, f32>(b)?, v)
            })),
            (Backend::Sse2, DType::F64) => Some(cast_acc(unsafe {
                dot_f64_sse2(cast_slice::<T, f64>(a)?, cast_slice::<T, f64>(b)?, v)
            })),
            // SAFETY (AVX2 arms): `covers_dot` + `available` guarantee the
            // avx2 feature was runtime-detected.
            (Backend::Avx2, DType::I32) => Some(cast_acc(unsafe {
                dot_i32_avx2(cast_slice::<T, i32>(a)?, cast_slice::<T, i32>(b)?, v)
            })),
            (Backend::Avx2, DType::F32) => Some(cast_acc(unsafe {
                dot_f32_avx2(cast_slice::<T, f32>(a)?, cast_slice::<T, f32>(b)?, v)
            })),
            (Backend::Avx2, DType::F64) => Some(cast_acc(unsafe {
                dot_f64_avx2(cast_slice::<T, f64>(a)?, cast_slice::<T, f64>(b)?, v)
            })),
            _ => None,
        }
    }

    pub(super) fn dispatch_scan<T: Element>(
        data: &[T],
        out: &mut Vec<T::Acc>,
        backend: Backend,
    ) -> bool {
        // AVX2 hosts run the same 128-bit kernel: a wider scan would need
        // cross-lane permutes for no memory-bound benefit.
        if !matches!(backend, Backend::Sse2 | Backend::Avx2) || T::DTYPE != DType::I32 {
            return false;
        }
        let Some(d) = cast_slice::<T, i32>(data) else {
            return false;
        };
        let mut concrete = Vec::with_capacity(d.len());
        // SAFETY: SSE2 is baseline on x86_64.
        unsafe { scan_i32_sse2(d, &mut concrete) };
        for v in concrete {
            out.push(cast_acc::<i32, T::Acc>(v));
        }
        true
    }

    /// SSE2 `f32` dot, 4 lanes per register; separate mul + add (no FMA).
    unsafe fn dot_f32_sse2(a: &[f32], b: &[f32], v: usize) -> f32 {
        const W: usize = 4;
        let nv = v / W;
        let mut vacc = [_mm_setzero_ps(); 8];
        let main = a.len() - a.len() % v;
        let mut i = 0;
        while i < main {
            let pa = a.as_ptr().add(i);
            let pb = b.as_ptr().add(i);
            for j in 0..nv {
                let prod = _mm_mul_ps(_mm_loadu_ps(pa.add(j * W)), _mm_loadu_ps(pb.add(j * W)));
                vacc[j] = _mm_add_ps(vacc[j], prod);
            }
            i += v;
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = _mm_add_ps(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0f32; W];
        _mm_storeu_ps(lanes.as_mut_ptr(), vacc[0]);
        combine_lanes_and_dot_tail::<f32>(&mut lanes, tail_of(a, v), tail_of(b, v))
    }

    /// SSE2 `f64` dot, 2 lanes per register.
    unsafe fn dot_f64_sse2(a: &[f64], b: &[f64], v: usize) -> f64 {
        const W: usize = 2;
        let nv = v / W;
        let mut vacc = [_mm_setzero_pd(); 16];
        let main = a.len() - a.len() % v;
        let mut i = 0;
        while i < main {
            let pa = a.as_ptr().add(i);
            let pb = b.as_ptr().add(i);
            for j in 0..nv {
                let prod = _mm_mul_pd(_mm_loadu_pd(pa.add(j * W)), _mm_loadu_pd(pb.add(j * W)));
                vacc[j] = _mm_add_pd(vacc[j], prod);
            }
            i += v;
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = _mm_add_pd(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0f64; W];
        _mm_storeu_pd(lanes.as_mut_ptr(), vacc[0]);
        combine_lanes_and_dot_tail::<f64>(&mut lanes, tail_of(a, v), tail_of(b, v))
    }

    /// AVX2 `i32` dot, 8 lanes per register (`vpmulld` wraps exactly like
    /// the scalar `i32` product in release builds).
    #[target_feature(enable = "avx2")]
    unsafe fn dot_i32_avx2(a: &[i32], b: &[i32], v: usize) -> i32 {
        const W: usize = 8;
        let nv = v / W;
        let mut vacc = [_mm256_setzero_si256(); 4];
        let main = a.len() - a.len() % v;
        let mut i = 0;
        while i < main {
            let pa = a.as_ptr().add(i);
            let pb = b.as_ptr().add(i);
            for j in 0..nv {
                let x = _mm256_loadu_si256(pa.add(j * W) as *const __m256i);
                let y = _mm256_loadu_si256(pb.add(j * W) as *const __m256i);
                vacc[j] = _mm256_add_epi32(vacc[j], _mm256_mullo_epi32(x, y));
            }
            i += v;
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = _mm256_add_epi32(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0i32; W];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, vacc[0]);
        combine_lanes_and_dot_tail::<i32>(&mut lanes, tail_of(a, v), tail_of(b, v))
    }

    /// AVX2 `f32` dot, 8 lanes per register.
    #[target_feature(enable = "avx2")]
    unsafe fn dot_f32_avx2(a: &[f32], b: &[f32], v: usize) -> f32 {
        const W: usize = 8;
        let nv = v / W;
        let mut vacc = [_mm256_setzero_ps(); 4];
        let main = a.len() - a.len() % v;
        let mut i = 0;
        while i < main {
            let pa = a.as_ptr().add(i);
            let pb = b.as_ptr().add(i);
            for j in 0..nv {
                let prod = _mm256_mul_ps(
                    _mm256_loadu_ps(pa.add(j * W)),
                    _mm256_loadu_ps(pb.add(j * W)),
                );
                vacc[j] = _mm256_add_ps(vacc[j], prod);
            }
            i += v;
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = _mm256_add_ps(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0f32; W];
        _mm256_storeu_ps(lanes.as_mut_ptr(), vacc[0]);
        combine_lanes_and_dot_tail::<f32>(&mut lanes, tail_of(a, v), tail_of(b, v))
    }

    /// AVX2 `f64` dot, 4 lanes per register.
    #[target_feature(enable = "avx2")]
    unsafe fn dot_f64_avx2(a: &[f64], b: &[f64], v: usize) -> f64 {
        const W: usize = 4;
        let nv = v / W;
        let mut vacc = [_mm256_setzero_pd(); 8];
        let main = a.len() - a.len() % v;
        let mut i = 0;
        while i < main {
            let pa = a.as_ptr().add(i);
            let pb = b.as_ptr().add(i);
            for j in 0..nv {
                let prod = _mm256_mul_pd(
                    _mm256_loadu_pd(pa.add(j * W)),
                    _mm256_loadu_pd(pb.add(j * W)),
                );
                vacc[j] = _mm256_add_pd(vacc[j], prod);
            }
            i += v;
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = _mm256_add_pd(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0f64; W];
        _mm256_storeu_pd(lanes.as_mut_ptr(), vacc[0]);
        combine_lanes_and_dot_tail::<f64>(&mut lanes, tail_of(a, v), tail_of(b, v))
    }

    /// SSE2 `i32` inclusive scan: in-register Hillis–Steele (shift by one
    /// lane, then two) plus a broadcast carry — wrapping adds make this
    /// exactly the sequential order.
    unsafe fn scan_i32_sse2(data: &[i32], out: &mut Vec<i32>) {
        const W: usize = 4;
        let chunks = data.len() / W;
        let mut carry = _mm_setzero_si128();
        out.set_len(chunks * W);
        for c in 0..chunks {
            let mut x = _mm_loadu_si128(data.as_ptr().add(c * W) as *const __m128i);
            x = _mm_add_epi32(x, _mm_slli_si128::<4>(x));
            x = _mm_add_epi32(x, _mm_slli_si128::<8>(x));
            x = _mm_add_epi32(x, carry);
            _mm_storeu_si128(out.as_mut_ptr().add(c * W) as *mut __m128i, x);
            carry = _mm_shuffle_epi32::<0b11_11_11_11>(x);
        }
        let done = chunks * W;
        let mut acc = if done == 0 { 0 } else { out[done - 1] };
        for &x in &data[done..] {
            acc += x;
            out.push(acc);
        }
    }
}

// ---------------------------------------------------------------------
// aarch64 kernels
// ---------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
// Same rationale as `x86`: explicit `vacc[j]` indexing mirrors the scalar
// tree's accumulator layout.
#[allow(clippy::needless_range_loop)]
mod neon {
    use super::{cast_acc, cast_slice, combine_lanes_and_dot_tail, tail_of, Backend};
    use ghr_types::{DType, Element};
    use std::arch::aarch64::*;

    pub(super) fn dispatch_dot<T: Element>(
        a: &[T],
        b: &[T],
        v: usize,
        backend: Backend,
    ) -> Option<T::Acc> {
        if backend != Backend::Neon {
            return None;
        }
        // SAFETY (all arms): Advanced SIMD is a baseline aarch64 feature.
        match T::DTYPE {
            DType::I32 => Some(cast_acc(unsafe {
                dot_i32_neon(cast_slice::<T, i32>(a)?, cast_slice::<T, i32>(b)?, v)
            })),
            DType::F32 => Some(cast_acc(unsafe {
                dot_f32_neon(cast_slice::<T, f32>(a)?, cast_slice::<T, f32>(b)?, v)
            })),
            DType::F64 => Some(cast_acc(unsafe {
                dot_f64_neon(cast_slice::<T, f64>(a)?, cast_slice::<T, f64>(b)?, v)
            })),
            _ => None,
        }
    }

    pub(super) fn dispatch_scan<T: Element>(
        data: &[T],
        out: &mut Vec<T::Acc>,
        backend: Backend,
    ) -> bool {
        if backend != Backend::Neon || T::DTYPE != DType::I32 {
            return false;
        }
        let Some(d) = cast_slice::<T, i32>(data) else {
            return false;
        };
        let mut concrete = Vec::with_capacity(d.len());
        // SAFETY: Advanced SIMD is a baseline aarch64 feature.
        unsafe { scan_i32_neon(d, &mut concrete) };
        for v in concrete {
            out.push(cast_acc::<i32, T::Acc>(v));
        }
        true
    }

    /// NEON `i32` dot, 4 lanes per register (`vmlaq` wraps like scalar).
    unsafe fn dot_i32_neon(a: &[i32], b: &[i32], v: usize) -> i32 {
        const W: usize = 4;
        let nv = v / W;
        let mut vacc = [vdupq_n_s32(0); 8];
        let main = a.len() - a.len() % v;
        let mut i = 0;
        while i < main {
            let pa = a.as_ptr().add(i);
            let pb = b.as_ptr().add(i);
            for j in 0..nv {
                vacc[j] = vmlaq_s32(vacc[j], vld1q_s32(pa.add(j * W)), vld1q_s32(pb.add(j * W)));
            }
            i += v;
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = vaddq_s32(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0i32; W];
        vst1q_s32(lanes.as_mut_ptr(), vacc[0]);
        combine_lanes_and_dot_tail::<i32>(&mut lanes, tail_of(a, v), tail_of(b, v))
    }

    /// NEON `f32` dot, 4 lanes per register; explicit mul + add (the
    /// fused `vfmaq` would round differently from the scalar tree).
    unsafe fn dot_f32_neon(a: &[f32], b: &[f32], v: usize) -> f32 {
        const W: usize = 4;
        let nv = v / W;
        let mut vacc = [vdupq_n_f32(0.0); 8];
        let main = a.len() - a.len() % v;
        let mut i = 0;
        while i < main {
            let pa = a.as_ptr().add(i);
            let pb = b.as_ptr().add(i);
            for j in 0..nv {
                let prod = vmulq_f32(vld1q_f32(pa.add(j * W)), vld1q_f32(pb.add(j * W)));
                vacc[j] = vaddq_f32(vacc[j], prod);
            }
            i += v;
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = vaddq_f32(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0f32; W];
        vst1q_f32(lanes.as_mut_ptr(), vacc[0]);
        combine_lanes_and_dot_tail::<f32>(&mut lanes, tail_of(a, v), tail_of(b, v))
    }

    /// NEON `f64` dot, 2 lanes per register.
    unsafe fn dot_f64_neon(a: &[f64], b: &[f64], v: usize) -> f64 {
        const W: usize = 2;
        let nv = v / W;
        let mut vacc = [vdupq_n_f64(0.0); 16];
        let main = a.len() - a.len() % v;
        let mut i = 0;
        while i < main {
            let pa = a.as_ptr().add(i);
            let pb = b.as_ptr().add(i);
            for j in 0..nv {
                let prod = vmulq_f64(vld1q_f64(pa.add(j * W)), vld1q_f64(pb.add(j * W)));
                vacc[j] = vaddq_f64(vacc[j], prod);
            }
            i += v;
        }
        let mut n = nv;
        while n > 1 {
            n /= 2;
            for j in 0..n {
                vacc[j] = vaddq_f64(vacc[j], vacc[j + n]);
            }
        }
        let mut lanes = [0f64; W];
        vst1q_f64(lanes.as_mut_ptr(), vacc[0]);
        combine_lanes_and_dot_tail::<f64>(&mut lanes, tail_of(a, v), tail_of(b, v))
    }

    /// NEON `i32` inclusive scan: Hillis–Steele via `vext` lane shifts plus
    /// a broadcast carry.
    unsafe fn scan_i32_neon(data: &[i32], out: &mut Vec<i32>) {
        const W: usize = 4;
        let chunks = data.len() / W;
        let zero = vdupq_n_s32(0);
        let mut carry = vdupq_n_s32(0);
        out.set_len(chunks * W);
        for c in 0..chunks {
            let mut x = vld1q_s32(data.as_ptr().add(c * W));
            x = vaddq_s32(x, vextq_s32::<3>(zero, x));
            x = vaddq_s32(x, vextq_s32::<2>(zero, x));
            x = vaddq_s32(x, carry);
            vst1q_s32(out.as_mut_ptr().add(c * W), x);
            carry = vdupq_laneq_s32::<3>(x);
        }
        let done = chunks * W;
        let mut acc = if done == 0 { 0 } else { out[done - 1] };
        for &x in &data[done..] {
            acc = acc + x;
            out.push(acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair<T: Element>(n: usize) -> (Vec<T>, Vec<T>) {
        let a = (0..n as u64).map(T::from_index).collect();
        let b = (0..n as u64)
            .map(|i| T::from_index(i.wrapping_mul(31) + 7))
            .collect();
        (a, b)
    }

    #[test]
    fn dot_sequential_matches_closed_form() {
        let a = vec![1i32, 2, 3];
        let b = vec![4i32, 5, 6];
        assert_eq!(dot_sequential(&a, &b), 32);
    }

    #[test]
    fn dot_unrolled_matches_sequential_for_integers() {
        for n in [0usize, 1, 7, 31, 32, 33, 100, 1023] {
            let (a, b) = pair::<i32>(n);
            let expect = dot_sequential(&a, &b);
            for v in [1, 2, 4, 8, 16, 32] {
                assert_eq!(dot_unrolled(&a, &b, v), expect, "n={n} v={v}");
            }
        }
    }

    #[test]
    fn dot_widens_i8_products_to_i64() {
        // 100 * 100 = 10_000 overflows i8/i16; 1000 of them need i64-ish
        // range to stay exact.
        let a = vec![100i8; 1000];
        let b = vec![100i8; 1000];
        assert_eq!(dot_unrolled(&a, &b, 8), 10_000_000i64);
    }

    #[test]
    fn dot_backends_agree_bit_for_bit() {
        for n in [0usize, 1, 3, 31, 32, 33, 257] {
            let (af, bf) = pair::<f32>(n);
            let (ai, bi) = pair::<i32>(n);
            for v in [2, 4, 8, 16, 32] {
                let scalar_f = dot_unrolled_with_backend(&af, &bf, v, Backend::Scalar);
                let scalar_i = dot_unrolled_with_backend(&ai, &bi, v, Backend::Scalar);
                for b in [Backend::Sse2, Backend::Avx2, Backend::Neon] {
                    if !b.available() {
                        continue;
                    }
                    assert_eq!(
                        dot_unrolled_with_backend(&af, &bf, v, b).to_bits(),
                        scalar_f.to_bits(),
                        "f32 n={n} v={v} backend={b}"
                    );
                    assert_eq!(
                        dot_unrolled_with_backend(&ai, &bi, v, b),
                        scalar_i,
                        "i32 n={n} v={v} backend={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn try_dot_rejects_bad_inputs() {
        assert!(try_dot_unrolled(&[1i32], &[1i32], 3).is_err());
        assert!(try_dot_unrolled(&[1i32, 2], &[1i32], 4).is_err());
    }

    #[test]
    fn scan_matches_running_sum() {
        for n in [0usize, 1, 3, 4, 5, 31, 32, 33, 1000] {
            let data: Vec<i32> = (0..n as u64).map(<i32 as Element>::from_index).collect();
            let got = scan_inclusive(&data);
            let mut acc = 0i32;
            let expect: Vec<i32> = data
                .iter()
                .map(|&x| {
                    acc += x;
                    acc
                })
                .collect();
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn scan_backends_agree_for_i32() {
        let data: Vec<i32> = (0..1337u64).map(<i32 as Element>::from_index).collect();
        let scalar = scan_inclusive_with_backend(&data, Backend::Scalar);
        for b in [Backend::Sse2, Backend::Avx2, Backend::Neon] {
            if !b.available() {
                continue;
            }
            assert_eq!(scan_inclusive_with_backend(&data, b), scalar, "{b}");
        }
    }

    #[test]
    fn scan_widens_i8_to_i64() {
        let data = vec![100i8; 100];
        let out = scan_inclusive(&data);
        assert_eq!(out[99], 10_000i64);
    }

    #[test]
    fn float_scan_stays_on_the_scalar_path() {
        for b in [Backend::Sse2, Backend::Avx2, Backend::Neon] {
            assert!(!b.covers_scan(ghr_types::DType::F32), "{b}");
            assert!(!b.covers_scan(ghr_types::DType::F64), "{b}");
        }
    }

    #[test]
    fn gemv_matches_per_row_dots() {
        let cols = 17usize;
        let rows = 9usize;
        let matrix: Vec<f64> = (0..(rows * cols) as u64)
            .map(<f64 as Element>::from_index)
            .collect();
        let x: Vec<f64> = (0..cols as u64).map(<f64 as Element>::from_index).collect();
        let out = gemv(&matrix, &x, 4);
        assert_eq!(out.len(), rows);
        for r in 0..rows {
            let expect = dot_unrolled(&matrix[r * cols..(r + 1) * cols], &x, 4);
            assert_eq!(out[r].to_bits(), expect.to_bits(), "row {r}");
        }
    }

    #[test]
    fn try_gemv_rejects_bad_shapes() {
        assert!(try_gemv(&[1i32; 10], &[1i32; 3], 4).is_err());
        assert!(try_gemv::<i32>(&[1; 12], &[], 4).is_err());
        assert!(try_gemv(&[1i32; 12], &[1i32; 3], 5).is_err());
    }
}
