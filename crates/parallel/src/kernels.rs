//! Single-threaded reduction kernels.
//!
//! These mirror the loop bodies of the paper's listings:
//!
//! * [`sum_sequential`] is Listing 1 — the serial reference;
//! * [`sum_unrolled`] is the body of Listing 5 — `V` elements accumulated
//!   per loop iteration into `V` independent partial sums, which is what
//!   lets the compiler vectorize and what the paper's optimized GPU kernel
//!   does per thread;
//! * [`sum_kahan`] / [`sum_pairwise`] are accuracy-oriented alternatives
//!   used to bound floating-point error in the verification layer.

use crate::simd::{self, Backend};
use ghr_types::{Accum, Element, GhrError, Result};

/// Serial sum reduction (the paper's Listing 1).
pub fn sum_sequential<T: Element>(data: &[T]) -> T::Acc {
    let mut sum = T::Acc::zero();
    for &x in data {
        sum = sum + x.widen();
    }
    sum
}

/// Check that `v` is in the paper's parameter space (a power of two in
/// 1..=32), returning [`GhrError::InvalidArg`] otherwise so CLI-supplied
/// values surface as a diagnostic rather than a panic backtrace.
pub fn validate_v(v: usize) -> Result<()> {
    if matches!(v, 1 | 2 | 4 | 8 | 16 | 32) {
        Ok(())
    } else {
        Err(GhrError::arg(
            "v",
            format!("V must be a power of two in 1..=32 (got {v})"),
        ))
    }
}

/// Sum with `V` elements accumulated per loop iteration (the paper's
/// Listing 5 body), using `V` independent accumulators that are combined at
/// the end. The tail (`data.len() % V`) is handled serially.
///
/// `v` must be one of 1, 2, 4, 8, 16, 32 — the paper's parameter space;
/// this wrapper panics on other values (see [`try_sum_unrolled`] for the
/// fallible variant used on argument paths).
///
/// When the host supports it, the loop runs on the vectorized kernels in
/// [`crate::simd`] (selected via [`Backend::active`], overridable with the
/// `GHR_SIMD` environment variable); the SIMD path reproduces the scalar
/// accumulation tree bit-for-bit, so the result does not depend on the
/// backend.
///
/// For floating-point types the result can differ from [`sum_sequential`]
/// by rounding, because the accumulation tree differs; the deviation is
/// bounded by the usual recursive-summation error bounds (exercised by the
/// property tests).
pub fn sum_unrolled<T: Element>(data: &[T], v: usize) -> T::Acc {
    try_sum_unrolled(data, v).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`sum_unrolled`]: invalid `v` values come back as
/// [`GhrError::InvalidArg`] instead of panicking.
pub fn try_sum_unrolled<T: Element>(data: &[T], v: usize) -> Result<T::Acc> {
    validate_v(v)?;
    Ok(sum_unrolled_on(data, v, Backend::active()))
}

/// [`sum_unrolled`] with an explicitly chosen kernel backend. Used by the
/// parallel reductions (which resolve the backend once, outside the worker
/// loop), the microbenchmarks, and the parity tests; results are
/// bit-identical across backends by construction.
///
/// Panics if `v` is not a power of two in 1..=32.
pub fn sum_unrolled_with_backend<T: Element>(data: &[T], v: usize, backend: Backend) -> T::Acc {
    validate_v(v).unwrap_or_else(|e| panic!("{e}"));
    sum_unrolled_on(data, v, backend)
}

/// Dispatch a validated `v` to the vector kernel when covered, otherwise
/// to the scalar monomorphized loop.
fn sum_unrolled_on<T: Element>(data: &[T], v: usize, backend: Backend) -> T::Acc {
    if let Some(sum) = simd::simd_sum(data, v, backend) {
        return sum;
    }
    match v {
        1 => sum_sequential(data),
        2 => sum_unrolled_const::<T, 2>(data),
        4 => sum_unrolled_const::<T, 4>(data),
        8 => sum_unrolled_const::<T, 8>(data),
        16 => sum_unrolled_const::<T, 16>(data),
        32 => sum_unrolled_const::<T, 32>(data),
        _ => unreachable!(),
    }
}

/// Monomorphized unrolled kernel — `LANES` accumulators, combined pairwise
/// at the end so the combine order is deterministic.
fn sum_unrolled_const<T: Element, const LANES: usize>(data: &[T]) -> T::Acc {
    let mut acc = [T::Acc::zero(); LANES];
    let chunks = data.chunks_exact(LANES);
    let tail = chunks.remainder();
    for chunk in chunks {
        for (a, &x) in acc.iter_mut().zip(chunk) {
            *a = *a + x.widen();
        }
    }
    // Pairwise combine of the lane accumulators.
    let mut width = LANES;
    while width > 1 {
        width /= 2;
        for i in 0..width {
            acc[i] = acc[i] + acc[i + width];
        }
    }
    let mut sum = acc[0];
    for &x in tail {
        sum = sum + x.widen();
    }
    sum
}

/// Kahan (compensated) summation for floating-point accumulators.
///
/// The compensation term recovers the low-order bits lost by each addition,
/// giving an error essentially independent of the element count. Used as a
/// high-accuracy reference when verifying float reductions.
pub fn sum_kahan(data: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    let mut c = 0.0f64;
    for &x in data {
        let y = x - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Pairwise (cascade) summation: splits the slice recursively and adds the
/// halves, giving an `O(log n)` error growth instead of `O(n)`.
///
/// This is also the combination order of a GPU tree reduction, so it serves
/// as the model for how far a device result may drift from the serial one.
pub fn sum_pairwise<T: Element>(data: &[T]) -> T::Acc {
    const SERIAL_CUTOFF: usize = 64;
    if data.len() <= SERIAL_CUTOFF {
        return sum_sequential(data);
    }
    let mid = data.len() / 2;
    let (lo, hi) = data.split_at(mid);
    sum_pairwise(lo) + sum_pairwise(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_i32(n: usize) -> Vec<i32> {
        (0..n as u64).map(<i32 as Element>::from_index).collect()
    }

    #[test]
    fn sequential_matches_closed_form() {
        let data: Vec<i32> = (1..=100).collect();
        assert_eq!(sum_sequential(&data), 5050);
    }

    #[test]
    fn sequential_empty_is_zero() {
        assert_eq!(sum_sequential::<i32>(&[]), 0);
        assert_eq!(sum_sequential::<f64>(&[]), 0.0);
    }

    #[test]
    fn unrolled_matches_sequential_for_integers() {
        for n in [0usize, 1, 7, 31, 32, 33, 100, 1023] {
            let data = ramp_i32(n);
            let expect = sum_sequential(&data);
            for v in [1, 2, 4, 8, 16, 32] {
                assert_eq!(sum_unrolled(&data, v), expect, "n={n} v={v}");
            }
        }
    }

    #[test]
    fn unrolled_widens_i8_to_i64() {
        // 2^7 * 200 copies of 100 would overflow i8 but not i64.
        let data = vec![100i8; 1000];
        assert_eq!(sum_unrolled(&data, 8), 100_000i64);
    }

    #[test]
    #[should_panic(expected = "V must be a power of two")]
    fn unrolled_rejects_bad_v() {
        let _ = sum_unrolled(&[1i32], 3);
    }

    #[test]
    fn try_unrolled_reports_bad_v_as_invalid_arg() {
        let err = try_sum_unrolled(&[1i32], 3).unwrap_err();
        assert!(matches!(err, GhrError::InvalidArg { what: "v", .. }));
        assert!(err.to_string().contains("power of two"), "{err}");
        assert_eq!(try_sum_unrolled(&[1i32, 2, 3], 4).unwrap(), 6);
    }

    #[test]
    fn every_backend_agrees_with_scalar_on_awkward_lengths() {
        for n in [0usize, 1, 3, 7, 31, 32, 33, 100, 1023] {
            let data = ramp_i32(n);
            for v in [1, 2, 4, 8, 16, 32] {
                let scalar = sum_unrolled_with_backend(&data, v, Backend::Scalar);
                for b in [Backend::Sse2, Backend::Avx2, Backend::Neon] {
                    if !b.available() {
                        continue;
                    }
                    assert_eq!(
                        sum_unrolled_with_backend(&data, v, b),
                        scalar,
                        "n={n} v={v} backend={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn unrolled_float_close_to_sequential() {
        let data: Vec<f32> = (0..10_000u64).map(<f32 as Element>::from_index).collect();
        let expect = sum_sequential(&data) as f64;
        for v in [2, 4, 8, 16, 32] {
            let got = sum_unrolled(&data, v) as f64;
            assert!((got - expect).abs() < 1e-2, "v={v}: {got} vs {expect}");
        }
    }

    #[test]
    fn kahan_beats_naive_on_ill_conditioned_input() {
        // 1.0 followed by many tiny values that naive f64 summation drops
        // relative to the running sum.
        let mut data = vec![1.0f64];
        data.extend(std::iter::repeat_n(1e-16, 100_000));
        let exact = 1.0 + 1e-16 * 100_000.0;
        let naive = sum_sequential(&data);
        let kahan = sum_kahan(&data);
        assert!((kahan - exact).abs() < (naive - exact).abs());
        assert!((kahan - exact).abs() < 1e-18);
    }

    #[test]
    fn pairwise_matches_sequential_for_integers() {
        for n in [0usize, 1, 63, 64, 65, 1000] {
            let data = ramp_i32(n);
            assert_eq!(sum_pairwise(&data), sum_sequential(&data), "n={n}");
        }
    }

    #[test]
    fn pairwise_is_accurate_for_floats() {
        let data: Vec<f32> = (0..1_000_000u64)
            .map(<f32 as Element>::from_index)
            .collect();
        let reference = sum_kahan(&data.iter().map(|&x| x as f64).collect::<Vec<_>>());
        let pairwise = sum_pairwise(&data) as f64;
        let naive = sum_sequential(&data) as f64;
        assert!((pairwise - reference).abs() <= (naive - reference).abs() + 1e-3);
    }
}
