//! # ghr-parallel
//!
//! The *real* (not simulated) parallel substrate of the reproduction:
//!
//! * [`pool::ThreadPool`] — a persistent worker pool built on
//!   `std::sync` primitives (zero external dependencies), running both
//!   fire-and-forget `'static` jobs ([`ThreadPool::submit`]) and scoped
//!   fork-join work over borrowed data ([`ThreadPool::scope`],
//!   [`ThreadPool::parallel_map`]);
//! * [`scope`](scope::parallel_for) — scoped fork-join helpers built on
//!   `std::thread::scope`, used to run borrowed-data loops the way an
//!   OpenMP `parallel for` would;
//! * [`kernels`] — sequential, unrolled (the paper's "V elements per
//!   iteration"), Kahan and pairwise sum-reduction kernels;
//! * [`reduce`] — parallel reductions combining the above, with
//!   OpenMP-style static chunking.
//!
//! The functional executors in `ghr-omp` call into this crate so that every
//! simulated experiment also *computes* its reduction for verification, and
//! the Criterion benches in `ghr-bench` measure these kernels for real on
//! the build host.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod kernels;
pub mod pool;
pub mod reduce;
pub mod scope;

pub use kernels::{sum_kahan, sum_pairwise, sum_sequential, sum_unrolled};
pub use pool::{Scope, ThreadPool};
pub use reduce::{
    parallel_max, parallel_min, parallel_reduce_with, parallel_sum, parallel_sum_unrolled,
    ChunkPolicy,
};
pub use scope::{parallel_for, parallel_map_chunks, split_evenly};
