//! # ghr-parallel
//!
//! The *real* (not simulated) parallel substrate of the reproduction:
//!
//! * [`pool::ThreadPool`] — a persistent worker pool built on
//!   `std::sync` primitives (zero external dependencies), running both
//!   fire-and-forget `'static` jobs ([`ThreadPool::submit`]) and scoped
//!   fork-join work over borrowed data ([`ThreadPool::scope`],
//!   [`ThreadPool::parallel_map`]);
//! * [`scope`](scope::parallel_for) — scoped fork-join helpers built on
//!   `std::thread::scope`, used to run borrowed-data loops the way an
//!   OpenMP `parallel for` would;
//! * [`kernels`] — sequential, unrolled (the paper's "V elements per
//!   iteration"), Kahan and pairwise sum-reduction kernels;
//! * [`simd`] — vectorized versions of the unrolled kernel (x86_64
//!   SSE2/AVX2, aarch64 NEON) behind runtime feature detection, bit-identical
//!   to the scalar accumulation tree and selectable via `GHR_SIMD`;
//! * [`workloads`] — the non-reduction kernels (dot, inclusive scan,
//!   row-major GEMV) behind the kernel-descriptor pipeline, with the same
//!   scalar-tree-vs-vector bit-identity contract as the sum kernels;
//! * [`reduce`] — parallel reductions combining the above, with
//!   OpenMP-style static chunking;
//! * [`microbench`] — std-only (no Criterion) warmup + min-of-N timing of
//!   the real kernels, backing `ghr bench` / `ghr calibrate cpu` and the
//!   `crates/bench` targets.
//!
//! The functional executors in `ghr-omp` call into this crate so that every
//! simulated experiment also *computes* its reduction for verification, and
//! the std-only benches in `ghr-bench` measure these kernels for real on
//! the build host.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod kernels;
pub mod microbench;
pub mod pool;
pub mod reduce;
pub mod scope;
pub mod simd;
pub mod workloads;

pub use kernels::{
    sum_kahan, sum_pairwise, sum_sequential, sum_unrolled, sum_unrolled_with_backend,
    try_sum_unrolled, validate_v,
};
pub use microbench::{measure, measure_pair, time_min, BenchSpec, Pair, Sample};
pub use pool::{Scope, ThreadPool};
pub use reduce::{
    parallel_max, parallel_min, parallel_reduce_with, parallel_sum, parallel_sum_unrolled,
    parallel_sum_unrolled_on, try_parallel_sum_unrolled, ChunkPolicy,
};
pub use scope::{parallel_for, parallel_map_chunks, split_evenly};
pub use simd::Backend;
pub use workloads::{
    dot_sequential, dot_unrolled, dot_unrolled_with_backend, gemv, gemv_with_backend,
    scan_inclusive, scan_inclusive_with_backend, try_dot_unrolled, try_gemv,
};
