//! A persistent worker thread pool for `'static` jobs.
//!
//! Workers pull boxed jobs from a shared crossbeam channel; dropping the
//! pool closes the channel and joins every worker. [`ThreadPool::wait`]
//! provides a fork-join barrier via an atomic in-flight counter, so the
//! pool can be reused across many submission rounds without re-spawning
//! threads (the reason to prefer it over `std::thread::scope` in hot
//! loops).

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    in_flight: AtomicUsize,
    panicked: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

/// A fixed-size pool of worker threads executing `'static` jobs.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "threads must be > 0");
        let (sender, receiver) = unbounded::<Job>();
        let shared = Arc::new(Shared {
            in_flight: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let receiver = receiver.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ghr-worker-{i}"))
                    .spawn(move || {
                        for job in receiver.iter() {
                            // A panicking job must not wedge the pool: the
                            // in-flight counter is decremented either way
                            // and the panic is contained to the job.
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            if result.is_err() {
                                shared.panicked.fetch_add(1, Ordering::AcqRel);
                            }
                            if shared.in_flight.fetch_sub(1, Ordering::AcqRel) == 1 {
                                let _guard = shared.idle_lock.lock();
                                shared.idle_cv.notify_all();
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            shared,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submit one job for asynchronous execution.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.shared.in_flight.fetch_add(1, Ordering::AcqRel);
        self.sender
            .as_ref()
            .expect("pool is live")
            .send(Box::new(job))
            .expect("workers alive");
    }

    /// Block until every submitted job has finished.
    pub fn wait(&self) {
        let mut guard = self.shared.idle_lock.lock();
        while self.shared.in_flight.load(Ordering::Acquire) != 0 {
            self.shared.idle_cv.wait(&mut guard);
        }
    }

    /// Jobs currently queued or running.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Jobs that panicked (contained by the pool; workers keep running).
    pub fn panicked_jobs(&self) -> usize {
        self.shared.panicked.load(Ordering::Acquire)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain outstanding jobs and exit.
        self.sender.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn wait_on_idle_pool_returns_immediately() {
        let pool = ThreadPool::new(2);
        pool.wait();
    }

    #[test]
    fn pool_is_reusable_across_rounds() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        for round in 1..=5u64 {
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                pool.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait();
            assert_eq!(counter.load(Ordering::Relaxed), round * 10);
        }
    }

    #[test]
    fn drop_drains_outstanding_jobs() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..100 {
                let c = Arc::clone(&counter);
                pool.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // No explicit wait: Drop must join after draining.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    #[should_panic(expected = "threads must be > 0")]
    fn zero_threads_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn panicking_jobs_do_not_wedge_the_pool() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..50 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                if i % 10 == 0 {
                    panic!("injected failure {i}");
                }
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Must return (not hang) despite the 5 panicking jobs.
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 45);
        assert_eq!(pool.panicked_jobs(), 5);
        // Workers are still alive and usable.
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 46);
    }

    #[test]
    fn threads_reports_size() {
        assert_eq!(ThreadPool::new(7).threads(), 7);
    }
}
