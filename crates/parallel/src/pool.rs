//! A persistent worker thread pool with scoped fork-join.
//!
//! Workers pull boxed jobs from a shared queue guarded by a
//! `std::sync::Mutex`/`Condvar` pair (no external dependencies, so the
//! workspace builds offline). [`ThreadPool::wait`] provides a fork-join
//! barrier via an in-flight counter, so the pool can be reused across many
//! submission rounds without re-spawning threads (the reason to prefer it
//! over `std::thread::scope` in hot loops).
//!
//! Two submission APIs coexist:
//!
//! * [`ThreadPool::submit`] — fire-and-forget `'static` jobs;
//! * [`ThreadPool::scope`] — structured fork-join over **borrowed** data:
//!   jobs spawned through a [`Scope`] may capture references to the
//!   caller's stack, because `scope` does not return until every spawned
//!   job has finished. [`ThreadPool::parallel_map`] builds on it to map a
//!   slice through the pool preserving index order — the primitive the
//!   experiment engine in `ghr-core` fans its grids with.
//!
//! Threads that block in [`Scope::wait_all`] *help*: they drain queued jobs
//! while waiting, so nested scopes (a pooled job opening its own scope)
//! cannot deadlock even on a one-worker pool.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    queue: VecDeque<Job>,
    /// Jobs queued or currently running.
    in_flight: usize,
    /// Jobs whose panic the pool contained (scope jobs catch their own).
    panicked: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a job is queued or the pool shuts down.
    job_cv: Condvar,
    /// Signalled when `in_flight` drops to zero.
    idle_cv: Condvar,
}

impl Shared {
    /// Jobs never run under the lock, but a panicking assertion elsewhere
    /// must not cascade into every later lock: ignore poisoning.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Run one job outside the lock and retire it.
    fn run_job(&self, job: Job) {
        // A panicking job must not wedge the pool: the in-flight counter
        // is decremented either way and the panic is contained to the job.
        let panicked = catch_unwind(AssertUnwindSafe(job)).is_err();
        let mut s = self.lock();
        if panicked {
            s.panicked += 1;
        }
        s.in_flight -= 1;
        if s.in_flight == 0 {
            self.idle_cv.notify_all();
        }
    }
}

/// A fixed-size pool of worker threads.
pub struct ThreadPool {
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "threads must be > 0");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                in_flight: 0,
                panicked: 0,
                shutdown: false,
            }),
            job_cv: Condvar::new(),
            idle_cv: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ghr-worker-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let mut s = shared.lock();
                            loop {
                                if let Some(job) = s.queue.pop_front() {
                                    break job;
                                }
                                if s.shutdown {
                                    return;
                                }
                                s = shared
                                    .job_cv
                                    .wait(s)
                                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                            }
                        };
                        shared.run_job(job);
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool { workers, shared }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submit one job for asynchronous execution.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.submit_boxed(Box::new(job));
    }

    fn submit_boxed(&self, job: Job) {
        let mut s = self.shared.lock();
        assert!(!s.shutdown, "pool is live");
        s.queue.push_back(job);
        s.in_flight += 1;
        drop(s);
        self.shared.job_cv.notify_one();
    }

    /// Pop and run one queued job on the calling thread. Returns `false`
    /// if the queue was empty. Used by waiting scopes to help out.
    fn try_run_one(&self) -> bool {
        let job = self.shared.lock().queue.pop_front();
        match job {
            Some(job) => {
                self.shared.run_job(job);
                true
            }
            None => false,
        }
    }

    /// Block until every submitted job has finished.
    pub fn wait(&self) {
        let mut s = self.shared.lock();
        while s.in_flight != 0 {
            s = self
                .shared
                .idle_cv
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Jobs currently queued or running.
    pub fn in_flight(&self) -> usize {
        self.shared.lock().in_flight
    }

    /// Jobs that panicked (contained by the pool; workers keep running).
    /// Jobs spawned through a [`Scope`] catch their own panics and re-raise
    /// them from [`ThreadPool::scope`], so they are not counted here.
    pub fn panicked_jobs(&self) -> usize {
        self.shared.lock().panicked
    }

    /// Structured fork-join over borrowed data.
    ///
    /// The closure receives a [`Scope`] whose [`spawn`](Scope::spawn)ed
    /// jobs may borrow from the enclosing stack frame: `scope` does not
    /// return (or unwind) before every spawned job has completed. If any
    /// spawned job panics, the first panic payload is re-raised here after
    /// the remaining jobs finish.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        match self.try_scope(f) {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Like [`ThreadPool::scope`], but a panic — in a spawned job or in the
    /// closure itself — is returned as its payload instead of re-raised, so
    /// the caller can convert a poisoned worker into an error value.
    /// Borrowed data is still drained before returning either way.
    pub fn try_scope<'env, R>(
        &self,
        f: impl FnOnce(&Scope<'_, 'env>) -> R,
    ) -> Result<R, Box<dyn std::any::Any + Send>> {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: Mutex::new(0),
                done_cv: Condvar::new(),
                panic: Mutex::new(None),
            }),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Drain unconditionally — even when `f` itself panicked, borrowed
        // data must outlive every spawned job.
        scope.wait_all();
        if let Some(payload) = scope.take_panic() {
            return Err(payload);
        }
        result
    }

    /// Map `items` through the pool, preserving index order.
    ///
    /// Each item becomes one pooled job (experiment-grid points are
    /// coarse-grained, so per-item jobs give the best load balance).
    /// `f` may borrow from the caller; results are written into per-index
    /// slots, so the output order is deterministic regardless of worker
    /// scheduling. Panics in `f` propagate after all jobs finish.
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        match self.try_parallel_map(items, f) {
            Ok(out) => out,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Like [`ThreadPool::parallel_map`], but a panicking job yields
    /// `Err(payload)` instead of re-raising, so callers can degrade a
    /// poisoned worker into an error value. On `Err` every non-panicking
    /// job has still run to completion (structured join, no cancellation).
    pub fn try_parallel_map<T, R, F>(
        &self,
        items: &[T],
        f: F,
    ) -> Result<Vec<R>, Box<dyn std::any::Any + Send>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(items.len(), || None);
        {
            let f = &f;
            self.try_scope(|s| {
                for (item, slot) in items.iter().zip(slots.iter_mut()) {
                    s.spawn(move || *slot = Some(f(item)));
                }
            })?;
        }
        let mut out = Vec::with_capacity(items.len());
        for slot in slots {
            match slot {
                Some(r) => out.push(r),
                // Unreachable in practice: the scope drained every job and
                // no panic was reported. Surface it as a payload anyway
                // rather than aborting the caller.
                None => return Err(Box::new("parallel_map slot left empty")),
            }
        }
        Ok(out)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Workers drain outstanding jobs (pop is tried before the shutdown
        // check) and exit once the queue is empty.
        self.shared.lock().shutdown = true;
        self.shared.job_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

struct ScopeState {
    /// Spawned-but-unfinished jobs of this scope.
    pending: Mutex<usize>,
    done_cv: Condvar,
    /// First panic payload raised by a job of this scope.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Handle for spawning borrowed-data jobs inside [`ThreadPool::scope`].
///
/// `'env` is the lifetime of data the jobs may borrow; it is invariant
/// (like `std::thread::Scope`) so a scope cannot be smuggled into a
/// longer-lived context.
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Spawn a job that may borrow data outliving the scope.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, f: F) {
        *lock(&self.state.pending) += 1;
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = lock(&state.panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut pending = lock(&state.pending);
            *pending -= 1;
            if *pending == 0 {
                state.done_cv.notify_all();
            }
        });
        // SAFETY: the job only borrows data for 'env. `ThreadPool::scope`
        // never returns (or unwinds) before `wait_all` has observed every
        // spawned job finished, so the erased borrows cannot dangle. The
        // queue may hold the job longer only if the pool itself outlives
        // the scope *and* the job, which `wait_all` rules out.
        let job: Job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
        self.pool.submit_boxed(job);
    }

    /// Block until every job spawned on this scope has finished, running
    /// queued pool jobs on the calling thread while waiting (so nested
    /// scopes make progress even on a single-worker pool).
    fn wait_all(&self) {
        loop {
            if *lock(&self.state.pending) == 0 {
                return;
            }
            if !self.pool.try_run_one() {
                let pending = lock(&self.state.pending);
                if *pending == 0 {
                    return;
                }
                // Timed wait: the queue may refill with jobs we can help
                // with (nested scopes) without `done_cv` being signalled.
                let _ = self
                    .state
                    .done_cv
                    .wait_timeout(pending, Duration::from_millis(1));
            }
        }
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        lock(&self.state.panic).take()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn wait_on_idle_pool_returns_immediately() {
        let pool = ThreadPool::new(2);
        pool.wait();
    }

    #[test]
    fn pool_is_reusable_across_rounds() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        for round in 1..=5u64 {
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                pool.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait();
            assert_eq!(counter.load(Ordering::Relaxed), round * 10);
        }
    }

    #[test]
    fn drop_drains_outstanding_jobs() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..100 {
                let c = Arc::clone(&counter);
                pool.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // No explicit wait: Drop must join after draining.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    #[should_panic(expected = "threads must be > 0")]
    fn zero_threads_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn panicking_jobs_do_not_wedge_the_pool() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..50 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                if i % 10 == 0 {
                    panic!("injected failure {i}");
                }
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Must return (not hang) despite the 5 panicking jobs.
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 45);
        assert_eq!(pool.panicked_jobs(), 5);
        // Workers are still alive and usable.
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 46);
    }

    #[test]
    fn threads_reports_size() {
        assert_eq!(ThreadPool::new(7).threads(), 7);
    }

    // ------------------------------------------------------------------
    // Scoped fork-join
    // ------------------------------------------------------------------

    #[test]
    fn scope_jobs_borrow_stack_data() {
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let partials: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
        pool.scope(|s| {
            for (i, chunk) in data.chunks(125).enumerate() {
                let partials = &partials;
                s.spawn(move || {
                    partials[i].store(chunk.iter().sum(), Ordering::Relaxed);
                });
            }
        });
        let total: u64 = partials.iter().map(|p| p.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 1000 * 999 / 2);
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = ThreadPool::new(2);
        let out = pool.scope(|s| {
            s.spawn(|| {});
            42
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn scope_with_no_spawns_is_fine() {
        let pool = ThreadPool::new(2);
        assert_eq!(pool.scope(|_| 7), 7);
    }

    #[test]
    fn scope_propagates_job_panics() {
        let pool = ThreadPool::new(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..10 {
                    let finished = Arc::clone(&finished);
                    s.spawn(move || {
                        if i == 3 {
                            panic!("scope job failure");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "scope must re-raise the job panic");
        // Every non-panicking job still ran to completion before the
        // panic was re-raised (structured join, no cancellation).
        assert_eq!(finished.load(Ordering::Relaxed), 9);
        // Scope-contained panics are not pool-level panics.
        assert_eq!(pool.panicked_jobs(), 0);
        // The pool remains usable.
        assert_eq!(pool.parallel_map(&[1, 2, 3], |x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // One worker: the outer scope job blocks in its own inner scope,
        // which can only finish because waiters help run queued jobs.
        let pool = Arc::new(ThreadPool::new(1));
        let sum = Arc::new(AtomicU64::new(0));
        pool.scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let sum = Arc::clone(&sum);
                s.spawn(move || {
                    pool.scope(|inner| {
                        for j in 0..8u64 {
                            let sum = Arc::clone(&sum);
                            inner.spawn(move || {
                                sum.fetch_add(j, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4 * 28);
    }

    #[test]
    fn try_parallel_map_returns_payload_instead_of_panicking() {
        let pool = ThreadPool::new(2);
        let items: Vec<u64> = (0..16).collect();
        let result = pool.try_parallel_map(&items, |&x| {
            if x == 7 {
                panic!("poisoned worker {x}");
            }
            x * 2
        });
        let payload = result.expect_err("panic must surface as Err");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("poisoned worker"), "{msg:?}");
        // The pool is healthy afterwards.
        assert_eq!(
            pool.try_parallel_map(&items, |&x| x + 1).unwrap(),
            (1..=16).collect::<Vec<_>>()
        );
    }

    #[test]
    fn try_scope_reports_closure_panic_as_payload() {
        let pool = ThreadPool::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let r: Result<(), _> = pool.try_scope(|s| {
            let ran = Arc::clone(&ran);
            s.spawn(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
            panic!("closure failure");
        });
        assert!(r.is_err());
        // The spawned job still drained before try_scope returned.
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let pool = ThreadPool::new(8);
        let items: Vec<u64> = (0..200).collect();
        let out = pool.parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_borrows_captured_state() {
        let pool = ThreadPool::new(3);
        let offset = 100u64;
        let items = [1u64, 2, 3];
        let out = pool.parallel_map(&items, |&x| x + offset);
        assert_eq!(out, vec![101, 102, 103]);
    }

    #[test]
    fn parallel_map_empty_slice() {
        let pool = ThreadPool::new(2);
        let out: Vec<u64> = pool.parallel_map(&[], |_: &u64| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn scope_is_reusable_and_interleaves_with_submit() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..3 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1000, Ordering::Relaxed);
            });
            pool.scope(|s| {
                for _ in 0..10 {
                    let c = &counter;
                    s.spawn(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 3030);
    }
}
