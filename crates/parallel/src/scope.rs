//! Scoped fork-join helpers over borrowed data.
//!
//! [`parallel_for`] is the moral equivalent of an OpenMP
//! `#pragma omp parallel for schedule(static)`: the index space is split
//! into one contiguous chunk per thread and each thread runs the body over
//! its chunk. It is built on `std::thread::scope`, so the body may borrow
//! from the caller's stack.

/// Split `n` items into at most `parts` contiguous ranges of near-equal
/// size (difference at most one). Empty ranges are not produced: fewer
/// ranges are returned when `n < parts`.
pub fn split_evenly(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts > 0, "parts must be > 0");
    let parts = parts.min(n.max(1));
    if n == 0 {
        return Vec::new();
    }
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Run `body` over `0..n` with static chunking across `threads` OS threads.
///
/// `body` receives `(thread_index, range)` and is invoked once per chunk.
/// With `threads == 1` (or `n` small) everything runs on the calling
/// thread — matching OpenMP's behaviour for a one-thread team and keeping
/// the fast path allocation-free.
pub fn parallel_for<F>(n: usize, threads: usize, body: F)
where
    F: Fn(usize, std::ops::Range<usize>) + Sync,
{
    assert!(threads > 0, "threads must be > 0");
    let ranges = split_evenly(n, threads);
    match ranges.len() {
        0 => {}
        1 => body(0, ranges.into_iter().next().expect("one range")),
        _ => {
            std::thread::scope(|s| {
                let body = &body;
                for (tid, range) in ranges.into_iter().enumerate() {
                    s.spawn(move || body(tid, range));
                }
            });
        }
    }
}

/// Map each chunk of `0..n` to a value and collect the per-chunk results in
/// chunk order (a fork-join `parallel for` with a reduction-friendly
/// result vector).
pub fn parallel_map_chunks<R, F>(n: usize, threads: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
{
    assert!(threads > 0, "threads must be > 0");
    let ranges = split_evenly(n, threads);
    match ranges.len() {
        0 => Vec::new(),
        1 => vec![body(0, ranges.into_iter().next().expect("one range"))],
        _ => {
            let mut slots: Vec<Option<R>> = Vec::new();
            slots.resize_with(ranges.len(), || None);
            std::thread::scope(|s| {
                let body = &body;
                for ((tid, range), slot) in ranges.into_iter().enumerate().zip(slots.iter_mut()) {
                    s.spawn(move || {
                        *slot = Some(body(tid, range));
                    });
                }
            });
            slots
                .into_iter()
                .map(|r| r.expect("worker completed"))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn split_evenly_balances() {
        let r = split_evenly(10, 3);
        assert_eq!(r, vec![0..4, 4..7, 7..10]);
        let lens: Vec<usize> = r.iter().map(|x| x.len()).collect();
        assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
    }

    #[test]
    fn split_evenly_edge_cases() {
        assert!(split_evenly(0, 4).is_empty());
        assert_eq!(split_evenly(3, 8), vec![0..1, 1..2, 2..3]);
        assert_eq!(split_evenly(5, 1), vec![0..5]);
    }

    #[test]
    #[should_panic(expected = "parts must be > 0")]
    fn split_evenly_rejects_zero_parts() {
        let _ = split_evenly(10, 0);
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, 8, |_tid, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_single_thread_runs_inline() {
        let tid_seen = AtomicUsize::new(usize::MAX);
        parallel_for(5, 1, |tid, range| {
            tid_seen.store(tid, Ordering::Relaxed);
            assert_eq!(range, 0..5);
        });
        assert_eq!(tid_seen.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn parallel_for_empty_does_nothing() {
        parallel_for(0, 4, |_, _| panic!("must not be called"));
    }

    #[test]
    fn parallel_map_chunks_preserves_order() {
        let out = parallel_map_chunks(100, 7, |_tid, range| range.start);
        let starts: Vec<usize> = split_evenly(100, 7).iter().map(|r| r.start).collect();
        assert_eq!(out, starts);
    }

    #[test]
    fn parallel_map_chunks_empty() {
        let out: Vec<usize> = parallel_map_chunks(0, 4, |_, _| 1);
        assert!(out.is_empty());
    }
}
