//! Parallel sum reductions over slices.
//!
//! This is the CPU leg of the paper's co-execution (Listing 7's
//! `#pragma omp for simd` loop): the slice is split into one contiguous
//! chunk per thread (OpenMP static schedule), each thread reduces its chunk
//! with an optionally unrolled kernel, and the per-thread partials are
//! combined in thread order — exactly the OpenMP `reduction(+:sum)`
//! combiner semantics.

#[cfg(test)]
use crate::kernels::sum_sequential;
use crate::kernels::{sum_unrolled_with_backend, validate_v};
use crate::scope::parallel_map_chunks;
use crate::simd::Backend;
use ghr_types::{Accum, Element, GhrError, Result};

/// How the index space is divided among threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkPolicy {
    /// One contiguous chunk per thread (OpenMP `schedule(static)`).
    Static,
    /// Fixed-size chunks handed out round-robin by thread index
    /// (OpenMP `schedule(static, chunk)`), exercising the same totals with
    /// a different memory-access interleaving.
    StaticChunked(usize),
}

/// Parallel sum over `data` with `threads` OS threads and sequential
/// per-chunk kernels.
pub fn parallel_sum<T: Element>(data: &[T], threads: usize) -> T::Acc {
    parallel_sum_unrolled(data, threads, 1, ChunkPolicy::Static)
}

/// Parallel sum with per-thread kernels unrolled by `v` (the paper's
/// "elements per loop iteration") and a selectable chunking policy.
///
/// Panics on a zero thread/chunk count or an invalid `v`; see
/// [`try_parallel_sum_unrolled`] for the fallible variant used on
/// CLI-argument paths.
pub fn parallel_sum_unrolled<T: Element>(
    data: &[T],
    threads: usize,
    v: usize,
    policy: ChunkPolicy,
) -> T::Acc {
    try_parallel_sum_unrolled(data, threads, v, policy).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`parallel_sum_unrolled`]: bad `threads`, `chunk` or
/// `v` values come back as [`GhrError::InvalidArg`] instead of panicking,
/// so `ghr` can exit with a diagnostic.
///
/// The kernel backend ([`Backend::active`], overridable via `GHR_SIMD`) is
/// resolved once here and shared by every worker, so per-chunk kernel calls
/// pay no environment lookups.
pub fn try_parallel_sum_unrolled<T: Element>(
    data: &[T],
    threads: usize,
    v: usize,
    policy: ChunkPolicy,
) -> Result<T::Acc> {
    parallel_sum_unrolled_on(data, threads, v, policy, Backend::active())
}

/// [`try_parallel_sum_unrolled`] with an explicitly chosen kernel backend.
/// Used by the microbenchmarks to time scalar and SIMD paths of the *same*
/// reduction against each other.
pub fn parallel_sum_unrolled_on<T: Element>(
    data: &[T],
    threads: usize,
    v: usize,
    policy: ChunkPolicy,
    backend: Backend,
) -> Result<T::Acc> {
    if threads == 0 {
        return Err(GhrError::arg("threads", "threads must be > 0"));
    }
    validate_v(v)?;
    match policy {
        ChunkPolicy::Static => {
            let partials = parallel_map_chunks(data.len(), threads, |_tid, range| {
                sum_unrolled_with_backend(&data[range], v, backend)
            });
            Ok(combine(partials))
        }
        ChunkPolicy::StaticChunked(chunk) => {
            if chunk == 0 {
                return Err(GhrError::arg("chunk", "chunk must be > 0"));
            }
            let partials = parallel_map_chunks(threads, threads, |_tid, thread_range| {
                let mut acc = T::Acc::zero();
                for tid in thread_range {
                    // Thread `tid` owns chunks tid, tid+threads, tid+2*threads, ...
                    let mut start = tid * chunk;
                    while start < data.len() {
                        let end = (start + chunk).min(data.len());
                        acc = acc + sum_unrolled_with_backend(&data[start..end], v, backend);
                        start += threads * chunk;
                    }
                }
                acc
            });
            Ok(combine(partials))
        }
    }
}

fn combine<A: Accum>(partials: Vec<A>) -> A {
    let mut sum = A::zero();
    for p in partials {
        sum = sum + p;
    }
    sum
}

/// Parallel reduction with an arbitrary associative combiner and identity
/// (OpenMP `reduction(min: ...)` / `reduction(max: ...)` on the host).
/// Per-thread partials combine in thread order, like the OpenMP combiner.
pub fn parallel_reduce_with<T, A, F>(data: &[T], threads: usize, identity: A, combine: F) -> A
where
    T: Element<Acc = A>,
    A: Accum,
    F: Fn(A, A) -> A + Copy + Sync,
{
    assert!(threads > 0, "threads must be > 0");
    let partials = crate::scope::parallel_map_chunks(data.len(), threads, |_tid, range| {
        let mut acc = identity;
        for &x in &data[range] {
            acc = combine(acc, x.widen());
        }
        acc
    });
    let mut out = identity;
    for p in partials {
        out = combine(out, p);
    }
    out
}

/// Parallel minimum over a slice.
pub fn parallel_min<T: Element>(data: &[T], threads: usize) -> T::Acc {
    parallel_reduce_with(data, threads, T::Acc::min_identity(), |a, b| a.acc_min(b))
}

/// Parallel maximum over a slice.
pub fn parallel_max<T: Element>(data: &[T], threads: usize) -> T::Acc {
    parallel_reduce_with(data, threads, T::Acc::max_identity(), |a, b| a.acc_max(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_i32(n: usize) -> Vec<i32> {
        (0..n as u64).map(<i32 as Element>::from_index).collect()
    }

    #[test]
    fn parallel_matches_sequential_i32() {
        for n in [0usize, 1, 100, 4096, 100_003] {
            let data = data_i32(n);
            let expect = sum_sequential(&data);
            for threads in [1, 2, 3, 8, 16] {
                assert_eq!(parallel_sum(&data, threads), expect, "n={n} t={threads}");
            }
        }
    }

    #[test]
    fn unrolled_parallel_matches_sequential_i8() {
        let data: Vec<i8> = (0..50_000u64).map(<i8 as Element>::from_index).collect();
        let expect = sum_sequential(&data);
        for v in [1, 4, 32] {
            for threads in [1, 5, 12] {
                assert_eq!(
                    parallel_sum_unrolled(&data, threads, v, ChunkPolicy::Static),
                    expect
                );
            }
        }
    }

    #[test]
    fn static_chunked_covers_everything() {
        let data = data_i32(10_007);
        let expect = sum_sequential(&data);
        for chunk in [1, 7, 64, 1000, 20_000] {
            for threads in [1, 3, 8] {
                assert_eq!(
                    parallel_sum_unrolled(&data, threads, 2, ChunkPolicy::StaticChunked(chunk)),
                    expect,
                    "chunk={chunk} t={threads}"
                );
            }
        }
    }

    #[test]
    fn float_parallel_is_close() {
        let data: Vec<f64> = (0..100_000u64).map(<f64 as Element>::from_index).collect();
        let expect = sum_sequential(&data);
        for threads in [2, 7, 16] {
            let got = parallel_sum(&data, threads);
            assert!((got - expect).abs() < 1e-6, "t={threads}");
        }
    }

    #[test]
    fn parallel_min_max_match_iterators() {
        let data: Vec<i32> = (0..30_000u64)
            .map(|i| ((i * 91) % 7777) as i32 - 3000)
            .collect();
        for threads in [1, 4, 9] {
            assert_eq!(parallel_min(&data, threads), *data.iter().min().unwrap());
            assert_eq!(parallel_max(&data, threads), *data.iter().max().unwrap());
        }
    }

    #[test]
    fn parallel_min_of_empty_is_identity() {
        let data: Vec<f32> = Vec::new();
        assert_eq!(parallel_min(&data, 4), f32::INFINITY);
        assert_eq!(parallel_max(&data, 4), f32::NEG_INFINITY);
    }

    #[test]
    fn reduce_with_widens_i8() {
        let data: Vec<i8> = vec![-5, 3, 7, -100, 44];
        assert_eq!(parallel_min(&data, 2), -100i64);
        assert_eq!(parallel_max(&data, 2), 44i64);
    }

    #[test]
    #[should_panic(expected = "chunk must be > 0")]
    fn zero_chunk_rejected() {
        let _ = parallel_sum_unrolled(&[1i32], 2, 1, ChunkPolicy::StaticChunked(0));
    }

    #[test]
    #[should_panic(expected = "threads must be > 0")]
    fn zero_threads_rejected() {
        let _ = parallel_sum(&[1i32], 0);
    }

    #[test]
    fn try_variant_reports_invalid_args_instead_of_panicking() {
        let data = [1i32, 2, 3];
        let e = try_parallel_sum_unrolled(&data, 0, 4, ChunkPolicy::Static).unwrap_err();
        assert!(
            matches!(
                e,
                GhrError::InvalidArg {
                    what: "threads",
                    ..
                }
            ),
            "{e}"
        );
        let e = try_parallel_sum_unrolled(&data, 2, 5, ChunkPolicy::Static).unwrap_err();
        assert!(matches!(e, GhrError::InvalidArg { what: "v", .. }), "{e}");
        let e = try_parallel_sum_unrolled(&data, 2, 4, ChunkPolicy::StaticChunked(0)).unwrap_err();
        assert!(
            matches!(e, GhrError::InvalidArg { what: "chunk", .. }),
            "{e}"
        );
        assert_eq!(
            try_parallel_sum_unrolled(&data, 2, 4, ChunkPolicy::Static).unwrap(),
            6
        );
    }
}
