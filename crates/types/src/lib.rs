//! # ghr-types
//!
//! Foundation types shared by every crate in the Grace-Hopper reduction
//! study: element data types ([`DType`], the [`Element`]/[`Accum`] traits),
//! physical units ([`Bytes`], [`Bandwidth`], [`SimTime`], [`Frequency`]),
//! device identifiers ([`Device`]), error types ([`GhrError`]) and small
//! statistics helpers ([`Summary`]).
//!
//! The crate is dependency-light by design so that simulators, the OpenMP
//! execution model and the benchmark harness can all agree on the same
//! vocabulary without pulling each other in.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod device;
pub mod dtype;
pub mod error;
pub mod json;
pub mod kernel;
pub mod pipeline;
pub mod stats;
pub mod transport;
pub mod units;
pub mod wire;

pub use device::Device;
pub use dtype::{Accum, CombineClass, DType, Element, WidthClass};
pub use error::{GhrError, Result};
pub use json::{Json, JsonError};
pub use kernel::{CombinePattern, KernelDescriptor, OutputCardinality, WorkloadKind};
pub use pipeline::{PlanSummary, RequestId, SessionStats, StagePlan, StageTiming};
pub use stats::{CacheLayer, CacheLayerStats, RouterStats, RouterWorkerStats, Summary};
pub use transport::{Endpoint, Listener, Stream};
pub use units::{Bandwidth, Bytes, Frequency, SimTime};
