//! Error types shared across the workspace.

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, GhrError>;

/// Errors produced by the execution model and simulators.
#[derive(Debug, Clone, PartialEq)]
pub enum GhrError {
    /// A launch/configuration parameter is outside its legal domain.
    InvalidConfig {
        /// Which parameter was rejected.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A user-supplied argument (CLI flag, kernel parameter) is outside its
    /// legal domain. Unlike [`GhrError::InvalidConfig`] — which flags an
    /// internally built launch configuration — this is the diagnostic path
    /// for values that arrive from the command line, so `ghr` can exit with
    /// a message instead of a panic backtrace.
    InvalidArg {
        /// Which argument was rejected (e.g. `"v"`, `"threads"`).
        what: &'static str,
        /// Human-readable detail, including the offending value.
        detail: String,
    },
    /// A data mapping was requested for memory the runtime does not know.
    UnmappedMemory {
        /// Description of the missing mapping.
        detail: String,
    },
    /// Verification of a computed reduction against the reference failed.
    VerificationFailed {
        /// Expected value (as f64 for reporting).
        expected: f64,
        /// Actual value (as f64 for reporting).
        actual: f64,
        /// Allowed absolute tolerance.
        tolerance: f64,
    },
    /// The simulated machine cannot execute the request (e.g. no GPU).
    UnsupportedDevice {
        /// Description of the request.
        detail: String,
    },
    /// An internal engine failure (a panicked or poisoned worker, a grid
    /// that failed to reassemble) surfaced as an error instead of a
    /// process abort, so one bad point cannot take down a whole study.
    Internal {
        /// Human-readable description of the failure.
        detail: String,
    },
    /// A declarative experiment request is malformed (empty grid, unknown
    /// verb, response of the wrong shape). This is the diagnostic path of
    /// the request → plan → execute pipeline and of `ghr serve`, where a
    /// bad request line must produce an error reply, never a panic.
    BadRequest {
        /// Human-readable description of what was rejected.
        detail: String,
    },
}

impl std::fmt::Display for GhrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GhrError::InvalidConfig { what, detail } => {
                write!(f, "invalid configuration for {what}: {detail}")
            }
            GhrError::InvalidArg { what, detail } => {
                write!(f, "invalid argument {what}: {detail}")
            }
            GhrError::UnmappedMemory { detail } => write!(f, "unmapped memory: {detail}"),
            GhrError::VerificationFailed {
                expected,
                actual,
                tolerance,
            } => write!(
                f,
                "verification failed: expected {expected}, got {actual} (tolerance {tolerance})"
            ),
            GhrError::UnsupportedDevice { detail } => write!(f, "unsupported device: {detail}"),
            GhrError::Internal { detail } => write!(f, "internal engine failure: {detail}"),
            GhrError::BadRequest { detail } => write!(f, "bad request: {detail}"),
        }
    }
}

impl std::error::Error for GhrError {}

impl GhrError {
    /// Shorthand constructor for [`GhrError::InvalidConfig`].
    pub fn invalid(what: &'static str, detail: impl Into<String>) -> Self {
        GhrError::InvalidConfig {
            what,
            detail: detail.into(),
        }
    }

    /// Shorthand constructor for [`GhrError::Internal`].
    pub fn internal(detail: impl Into<String>) -> Self {
        GhrError::Internal {
            detail: detail.into(),
        }
    }

    /// Shorthand constructor for [`GhrError::InvalidArg`].
    pub fn arg(what: &'static str, detail: impl Into<String>) -> Self {
        GhrError::InvalidArg {
            what,
            detail: detail.into(),
        }
    }

    /// Shorthand constructor for [`GhrError::BadRequest`].
    pub fn bad_request(detail: impl Into<String>) -> Self {
        GhrError::BadRequest {
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GhrError::invalid("num_teams", "must be > 0");
        assert_eq!(
            e.to_string(),
            "invalid configuration for num_teams: must be > 0"
        );
        let v = GhrError::VerificationFailed {
            expected: 1.0,
            actual: 2.0,
            tolerance: 0.1,
        };
        assert!(v.to_string().contains("verification failed"));
        let i = GhrError::internal("worker panicked: boom");
        assert_eq!(
            i.to_string(),
            "internal engine failure: worker panicked: boom"
        );
        let a = GhrError::arg("v", "must be a power of two in 1..=32 (got 3)");
        assert_eq!(
            a.to_string(),
            "invalid argument v: must be a power of two in 1..=32 (got 3)"
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(GhrError::UnmappedMemory {
            detail: "ptr 0xdead".into(),
        });
        assert!(e.to_string().contains("unmapped"));
    }
}
