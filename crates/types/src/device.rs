//! Device identifiers.

/// A compute device in the node.
///
/// The Grace-Hopper node of the paper has exactly one host (the Grace CPU)
/// and one offload target (the Hopper GPU); the enum still carries a device
/// ordinal so multi-GPU extensions do not need an API break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Device {
    /// The host CPU (initial device in OpenMP terms).
    Host,
    /// An offload target GPU, by ordinal.
    Gpu(u32),
}

impl Device {
    /// The single GPU of a GH200 node.
    pub const GPU0: Device = Device::Gpu(0);

    /// Whether this is the host device.
    #[inline]
    pub const fn is_host(self) -> bool {
        matches!(self, Device::Host)
    }

    /// Whether this is a GPU device.
    #[inline]
    pub const fn is_gpu(self) -> bool {
        matches!(self, Device::Gpu(_))
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Device::Host => f.write_str("host"),
            Device::Gpu(i) => write!(f, "gpu{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Device::Host.is_host());
        assert!(!Device::Host.is_gpu());
        assert!(Device::GPU0.is_gpu());
        assert!(!Device::GPU0.is_host());
    }

    #[test]
    fn display() {
        assert_eq!(Device::Host.to_string(), "host");
        assert_eq!(Device::Gpu(0).to_string(), "gpu0");
        assert_eq!(Device::Gpu(3).to_string(), "gpu3");
    }
}
