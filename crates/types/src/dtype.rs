//! Element data types of the reduction study.
//!
//! The paper evaluates four cases that differ only in the input element type
//! `T` and the accumulator type `R`:
//!
//! | Case | `T` | `R` |
//! |------|-----|-----|
//! | C1   | `i32` | `i32` |
//! | C2   | `i8`  | `i64` |
//! | C3   | `f32` | `f32` |
//! | C4   | `f64` | `f64` |
//!
//! [`DType`] is the runtime descriptor used by the performance models (only
//! the width matters for timing); [`Element`] / [`Accum`] are the compile-time
//! traits used by the functional executors.

/// Runtime descriptor of an element data type.
///
/// The timing models only care about the byte width; the functional
/// executors use the [`Element`] trait instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DType {
    /// 8-bit signed integer (paper case C2 input).
    I8,
    /// 32-bit signed integer (paper case C1).
    I32,
    /// 64-bit signed integer (paper case C2 accumulator).
    I64,
    /// IEEE-754 single precision (paper case C3).
    F32,
    /// IEEE-754 double precision (paper case C4).
    F64,
}

/// Memory-width class of an element type.
///
/// The streaming-efficiency tables of the timing models are keyed by the
/// element width, not the exact type; this is the shared classification the
/// CPU and GPU models both dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WidthClass {
    /// 1-byte elements (`i8`).
    OneByte,
    /// 4-byte elements (`i32`, `f32`).
    FourByte,
    /// 8-byte elements (`i64`, `f64`).
    EightByte,
}

/// Cost class of a device-wide accumulator combine.
///
/// Integer adds aggregate in L2 (fast); 64-bit and floating-point atomics
/// serialize round trips — the grouping behind the four fitted combine
/// costs of the GPU model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CombineClass {
    /// 32-bit-or-narrower integer adds (L2 aggregation).
    Int32,
    /// 64-bit integer adds.
    Int64,
    /// Single-precision float combines.
    Float32,
    /// Double-precision float combines.
    Float64,
}

impl DType {
    /// Width of one element in bytes.
    #[inline]
    pub const fn size_bytes(self) -> u64 {
        match self {
            DType::I8 => 1,
            DType::I32 | DType::F32 => 4,
            DType::I64 | DType::F64 => 8,
        }
    }

    /// Memory-width class (drives the streaming-efficiency tables shared
    /// by the CPU and GPU timing models).
    #[inline]
    pub const fn width_class(self) -> WidthClass {
        match self.size_bytes() {
            1 => WidthClass::OneByte,
            4 => WidthClass::FourByte,
            _ => WidthClass::EightByte,
        }
    }

    /// Cost class of a device-wide combine into this accumulator type.
    #[inline]
    pub const fn combine_class(self) -> CombineClass {
        match self {
            DType::I8 | DType::I32 => CombineClass::Int32,
            DType::I64 => CombineClass::Int64,
            DType::F32 => CombineClass::Float32,
            DType::F64 => CombineClass::Float64,
        }
    }

    /// Whether accumulating this element type pays a widening chain
    /// (`i8` → `i64` sign-extension, case C2) on both CPU and GPU.
    #[inline]
    pub const fn widens_on_accumulate(self) -> bool {
        matches!(self, DType::I8)
    }

    /// SIMD lane-count scale relative to a 4-byte element: how many more
    /// (or fewer) lanes a fixed-width vector unit fits for this type.
    #[inline]
    pub fn simd_width_scale(self) -> f64 {
        4.0 / self.size_bytes() as f64
    }

    /// Whether the type is a floating-point type (reduction order then
    /// affects the numerical result).
    #[inline]
    pub const fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F64)
    }

    /// Short lowercase name as used in tables (`i8`, `i32`, ...).
    pub const fn name(self) -> &'static str {
        match self {
            DType::I8 => "i8",
            DType::I32 => "i32",
            DType::I64 => "i64",
            DType::F32 => "f32",
            DType::F64 => "f64",
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An input element type `T` of the reduction.
///
/// `Element` ties a concrete Rust type to its [`DType`] descriptor and
/// provides the widening conversion into its natural accumulator.
pub trait Element: Copy + Send + Sync + 'static {
    /// The accumulator type `R` used for this element type in the paper.
    type Acc: Accum;

    /// Runtime descriptor for this type.
    const DTYPE: DType;

    /// Widen one element into the accumulator domain.
    fn widen(self) -> Self::Acc;

    /// Produce a deterministic test element from an index (used by the
    /// workload generators; chosen so that exact integer sums are easy to
    /// verify and float sums stay well-conditioned).
    fn from_index(i: u64) -> Self;

    /// Map a unit-interval sample to an element of the type's test range
    /// (used by the randomized workload generators).
    fn from_unit(u: f64) -> Self;
}

/// An accumulator type `R` of the reduction.
///
/// The `Mul` bound serves the multiply-accumulate workloads (dot, GEMV),
/// whose products are formed in the accumulator domain after widening.
pub trait Accum:
    Copy
    + Send
    + Sync
    + PartialEq
    + PartialOrd
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + 'static
{
    /// Runtime descriptor for this type.
    const DTYPE: DType;

    /// The additive identity.
    fn zero() -> Self;

    /// The identity of the `min` reduction (the type's maximum value).
    fn min_identity() -> Self;

    /// The identity of the `max` reduction (the type's minimum value).
    fn max_identity() -> Self;

    /// The smaller of two values (IEEE semantics for floats: NaN loses).
    fn acc_min(self, other: Self) -> Self {
        if other < self {
            other
        } else {
            self
        }
    }

    /// The larger of two values.
    fn acc_max(self, other: Self) -> Self {
        if other > self {
            other
        } else {
            self
        }
    }

    /// Lossy conversion to `f64` (used for tolerance checks and reporting).
    fn as_f64(self) -> f64;

    /// Magnitude of the difference to another accumulator value, in `f64`.
    fn abs_diff(self, other: Self) -> f64 {
        (self.as_f64() - other.as_f64()).abs()
    }
}

impl Element for i8 {
    type Acc = i64;
    const DTYPE: DType = DType::I8;
    #[inline]
    fn widen(self) -> i64 {
        self as i64
    }
    #[inline]
    fn from_index(i: u64) -> Self {
        // Small alternating values keep the exact sum representable and
        // exercise sign handling.
        ((i % 7) as i8) - 3
    }
    #[inline]
    fn from_unit(u: f64) -> Self {
        ((u * 7.0).floor() as i8).clamp(0, 6) - 3
    }
}

impl Element for i32 {
    type Acc = i32;
    const DTYPE: DType = DType::I32;
    #[inline]
    fn widen(self) -> i32 {
        self
    }
    #[inline]
    fn from_index(i: u64) -> Self {
        ((i % 11) as i32) - 5
    }
    #[inline]
    fn from_unit(u: f64) -> Self {
        ((u * 11.0).floor() as i32).clamp(0, 10) - 5
    }
}

impl Element for f32 {
    type Acc = f32;
    const DTYPE: DType = DType::F32;
    #[inline]
    fn widen(self) -> f32 {
        self
    }
    #[inline]
    fn from_index(i: u64) -> Self {
        // Values in [-0.5, 0.5] keep partial sums small so float error
        // bounds stay tight even over 2^30 elements.
        ((i % 101) as f32) / 101.0 - 0.5
    }
    #[inline]
    fn from_unit(u: f64) -> Self {
        u as f32 - 0.5
    }
}

impl Element for f64 {
    type Acc = f64;
    const DTYPE: DType = DType::F64;
    #[inline]
    fn widen(self) -> f64 {
        self
    }
    #[inline]
    fn from_index(i: u64) -> Self {
        ((i % 101) as f64) / 101.0 - 0.5
    }
    #[inline]
    fn from_unit(u: f64) -> Self {
        u - 0.5
    }
}

impl Accum for i32 {
    const DTYPE: DType = DType::I32;
    #[inline]
    fn zero() -> Self {
        0
    }
    #[inline]
    fn min_identity() -> Self {
        i32::MAX
    }
    #[inline]
    fn max_identity() -> Self {
        i32::MIN
    }
    #[inline]
    fn as_f64(self) -> f64 {
        self as f64
    }
}

impl Accum for i64 {
    const DTYPE: DType = DType::I64;
    #[inline]
    fn zero() -> Self {
        0
    }
    #[inline]
    fn min_identity() -> Self {
        i64::MAX
    }
    #[inline]
    fn max_identity() -> Self {
        i64::MIN
    }
    #[inline]
    fn as_f64(self) -> f64 {
        self as f64
    }
}

impl Accum for f32 {
    const DTYPE: DType = DType::F32;
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn min_identity() -> Self {
        f32::INFINITY
    }
    #[inline]
    fn max_identity() -> Self {
        f32::NEG_INFINITY
    }
    #[inline]
    fn as_f64(self) -> f64 {
        self as f64
    }
}

impl Accum for f64 {
    const DTYPE: DType = DType::F64;
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn min_identity() -> Self {
        f64::INFINITY
    }
    #[inline]
    fn max_identity() -> Self {
        f64::NEG_INFINITY
    }
    #[inline]
    fn as_f64(self) -> f64 {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_rust_types() {
        assert_eq!(DType::I8.size_bytes() as usize, std::mem::size_of::<i8>());
        assert_eq!(DType::I32.size_bytes() as usize, std::mem::size_of::<i32>());
        assert_eq!(DType::I64.size_bytes() as usize, std::mem::size_of::<i64>());
        assert_eq!(DType::F32.size_bytes() as usize, std::mem::size_of::<f32>());
        assert_eq!(DType::F64.size_bytes() as usize, std::mem::size_of::<f64>());
    }

    #[test]
    fn width_classes_group_by_size() {
        assert_eq!(DType::I8.width_class(), WidthClass::OneByte);
        assert_eq!(DType::I32.width_class(), WidthClass::FourByte);
        assert_eq!(DType::F32.width_class(), WidthClass::FourByte);
        assert_eq!(DType::I64.width_class(), WidthClass::EightByte);
        assert_eq!(DType::F64.width_class(), WidthClass::EightByte);
    }

    #[test]
    fn combine_classes_group_like_the_fitted_costs() {
        assert_eq!(DType::I8.combine_class(), CombineClass::Int32);
        assert_eq!(DType::I32.combine_class(), CombineClass::Int32);
        assert_eq!(DType::I64.combine_class(), CombineClass::Int64);
        assert_eq!(DType::F32.combine_class(), CombineClass::Float32);
        assert_eq!(DType::F64.combine_class(), CombineClass::Float64);
    }

    #[test]
    fn only_i8_widens_on_accumulate() {
        assert!(DType::I8.widens_on_accumulate());
        for d in [DType::I32, DType::I64, DType::F32, DType::F64] {
            assert!(!d.widens_on_accumulate());
        }
    }

    #[test]
    fn simd_width_scale_is_relative_to_four_bytes() {
        assert_eq!(DType::I8.simd_width_scale(), 4.0);
        assert_eq!(DType::I32.simd_width_scale(), 1.0);
        assert_eq!(DType::F64.simd_width_scale(), 0.5);
    }

    #[test]
    fn float_detection() {
        assert!(DType::F32.is_float());
        assert!(DType::F64.is_float());
        assert!(!DType::I8.is_float());
        assert!(!DType::I32.is_float());
        assert!(!DType::I64.is_float());
    }

    #[test]
    fn element_dtype_agrees_with_descriptor() {
        assert_eq!(<i8 as Element>::DTYPE, DType::I8);
        assert_eq!(<i32 as Element>::DTYPE, DType::I32);
        assert_eq!(<f32 as Element>::DTYPE, DType::F32);
        assert_eq!(<f64 as Element>::DTYPE, DType::F64);
    }

    #[test]
    fn widen_preserves_value() {
        assert_eq!((-3i8).widen(), -3i64);
        assert_eq!(7i32.widen(), 7i32);
        assert_eq!(1.5f32.widen(), 1.5f32);
    }

    #[test]
    fn from_index_is_deterministic_and_bounded() {
        for i in 0..1000u64 {
            let a = <i8 as Element>::from_index(i);
            let b = <i8 as Element>::from_index(i);
            assert_eq!(a, b);
            assert!((-3..=3).contains(&a));
            let f = <f32 as Element>::from_index(i);
            assert!((-0.5..=0.5).contains(&f));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DType::I8.to_string(), "i8");
        assert_eq!(DType::F64.to_string(), "f64");
    }

    #[test]
    fn accum_zero_is_identity() {
        assert_eq!(i64::zero() + 5, 5i64);
        assert_eq!(f64::zero() + 2.5, 2.5);
    }

    #[test]
    fn min_max_identities_absorb() {
        assert_eq!(<i32 as Accum>::min_identity().acc_min(7), 7);
        assert_eq!(<i32 as Accum>::max_identity().acc_max(-7), -7);
        assert_eq!(<f32 as Accum>::min_identity().acc_min(1.5), 1.5);
        assert_eq!(<f64 as Accum>::max_identity().acc_max(-2.5), -2.5);
    }

    #[test]
    fn acc_min_max_ordering() {
        assert_eq!(3i64.acc_min(5), 3);
        assert_eq!(3i64.acc_max(5), 5);
        assert_eq!((-1.0f64).acc_min(1.0), -1.0);
        assert_eq!((-1.0f64).acc_max(1.0), 1.0);
    }
}
