//! A minimal std-only JSON reader for the workspace's own reports.
//!
//! The workspace *writes* JSON by hand (`pipeline::json_escape` /
//! `json_f64`) and, until now, never read any back. `ghr bench diff`
//! needs to: it compares committed `BENCH_*.json` files across
//! branches. A full serde stack is out of scope for a dependency-light
//! crate, and the inputs are our own machine-written reports — so this
//! is a small recursive-descent parser over the JSON grammar
//! (rfc 8259): objects keep insertion order in a `Vec`, every number is
//! an `f64` (all our counters fit in its 53-bit mantissa), and escape
//! sequences — including `\uXXXX` surrogate pairs — decode to the real
//! characters. Errors carry the byte offset so a truncated artifact
//! points at itself.

use std::fmt;

/// A parsed JSON value. Objects preserve key order (they are the order
/// our writers emitted), duplicates keep the first occurrence on lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; JSON doesn't distinguish int from float.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            src: src.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.src.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Dotted-path convenience: `doc.path(&["latency_ms", "p99"])`.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        keys.iter().try_fold(self, |node, key| node.get(key))
    }
}

/// A parse failure: what was wrong and the byte offset it was found at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the source.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    src: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.at,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.src[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.at]).expect("ASCII number bytes");
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            message: format!("bad number {text:?}"),
            at: start,
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.at + 4;
        let Some(hex) = self
            .src
            .get(self.at..end)
            .and_then(|b| std::str::from_utf8(b).ok())
        else {
            return Err(self.err("truncated \\u escape"));
        };
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad hex in \\u escape"))?;
        self.at = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // A high surrogate must be followed by
                                // `\uXXXX` holding the low half.
                                if self.peek() == Some(b'\\') {
                                    self.at += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Copy one whole UTF-8 scalar (the source is &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.src[self.at..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting_round_trip() {
        let doc =
            Json::parse(r#"{"a": 1, "b": -2.5e2, "c": [true, false, null], "d": {"e": "hi"}}"#)
                .unwrap();
        assert_eq!(doc.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(doc.get("b").unwrap().as_f64(), Some(-250.0));
        let c = doc.get("c").unwrap().as_arr().unwrap();
        assert_eq!(c, &[Json::Bool(true), Json::Bool(false), Json::Null]);
        assert_eq!(doc.path(&["d", "e"]).unwrap().as_str(), Some("hi"));
        assert_eq!(doc.path(&["d", "missing"]), None);
    }

    #[test]
    fn escapes_decode_including_surrogate_pairs() {
        let doc = Json::parse(r#""a\"b\\c\nd A 😀""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\nd A 😀"));
        assert!(Json::parse(r#""\uD800""#).is_err(), "unpaired surrogate");
        assert!(Json::parse(r#""\q""#).is_err(), "unknown escape");
    }

    #[test]
    fn parses_what_the_workspace_writers_emit() {
        // The exact idioms of pipeline::json_escape / json_f64 output.
        let doc = Json::parse(
            "{\n  \"bench\": \"loadgen\",\n  \"phases\": [\n    \
             {\"name\": \"warm\", \"throughput_rps\": 6697240.910872985, \
             \"latency_ms\": {\"p50\": 0.000077}, \"speedup\": null}\n  ]\n}\n",
        )
        .unwrap();
        let phases = doc.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases[0].get("name").unwrap().as_str(), Some("warm"));
        assert_eq!(
            phases[0].path(&["latency_ms", "p50"]).unwrap().as_f64(),
            Some(0.000077)
        );
        assert_eq!(phases[0].get("speedup"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents_with_offsets() {
        for (src, what) in [
            ("{\"a\": }", "missing value"),
            ("[1, 2", "unterminated array"),
            ("{\"a\": 1} extra", "trailing garbage"),
            ("\"unterminated", "unterminated string"),
            ("01x", "trailing garbage after number"),
            ("nul", "bad literal"),
        ] {
            let err = Json::parse(src).expect_err(what);
            assert!(err.at <= src.len(), "{what}: {err}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn duplicate_keys_keep_first_on_lookup() {
        let doc = Json::parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(doc.get("k").unwrap().as_f64(), Some(1.0));
    }
}
