//! Kernel descriptors: a workload as data.
//!
//! The paper studies exactly one kernel shape — a streaming sum reduction —
//! and the original timing model hard-coded that shape. A
//! [`KernelDescriptor`] instead describes *any* streaming kernel by the
//! quantities the analytic models actually consume:
//!
//! * how many input streams each loop iteration reads (`input_streams`),
//! * how many arithmetic ops each element costs relative to a plain add
//!   (`flops_per_elem`),
//! * how per-team partials combine across the device ([`CombinePattern`]),
//! * how many outputs the kernel writes back ([`OutputCardinality`]).
//!
//! [`KernelDescriptor::sum_reduction`] describes the paper's kernel and is
//! required (and pinned by test) to reproduce the original reduction timing
//! model bit-identically; the other constructors open new workloads on the
//! same substrate.

use crate::dtype::DType;

/// How per-team partial results combine into the kernel's output.
///
/// This is the field that drives the team-pipeline leg of the GPU timing
/// model: each pattern implies a different per-team epilogue cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CombinePattern {
    /// Every element folds into one scalar (the paper's sum reduction):
    /// one device-wide combine per team.
    Reduce,
    /// Inclusive prefix: each team publishes its block aggregate and waits
    /// on its predecessor's running prefix (decoupled look-back), so the
    /// per-team epilogue pays two combine round-trips instead of one.
    Scan,
    /// Two streams multiplied elementwise and folded into one scalar
    /// (dot / the reduction half of axpy-dot). The device-wide combine is
    /// the same as [`CombinePattern::Reduce`].
    AxpyDot,
    /// Per-row reduction of a matrix against a shared vector (GEMV with
    /// one team-block of rows per team). Rows complete inside their team,
    /// so there is no device-wide combine at all.
    GemvRow,
}

impl CombinePattern {
    /// Short lowercase name as used in tables and reports.
    pub const fn name(self) -> &'static str {
        match self {
            CombinePattern::Reduce => "reduce",
            CombinePattern::Scan => "scan",
            CombinePattern::AxpyDot => "axpy-dot",
            CombinePattern::GemvRow => "gemv-row",
        }
    }
}

/// How many outputs a kernel writes per input element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OutputCardinality {
    /// One scalar result for the whole kernel (reductions). The write-back
    /// is negligible and contributes no bytes to the memory leg.
    Scalar,
    /// One accumulator per input element (scan): the output stream is as
    /// long as the input and its bytes ride the same memory pipe.
    PerElement,
    /// One accumulator per row of `cols` input elements (GEMV).
    PerRow {
        /// Row length in elements; `m / cols` outputs are written.
        cols: u32,
    },
}

/// A streaming kernel described as data, not code.
///
/// The GPU model times any descriptor with the same three-leg structure it
/// used for the reduction (memory / compute / team pipeline); the CPU model
/// and the functional executors consume the same fields.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KernelDescriptor {
    /// Input element type `T`.
    pub elem: DType,
    /// Accumulator / output type `R`.
    pub acc: DType,
    /// How partials combine across the team hierarchy.
    pub combine: CombinePattern,
    /// Input streams read per loop iteration (1 for reduce/scan, 2 for
    /// dot and GEMV, which read a second operand alongside the main one).
    pub input_streams: u32,
    /// Arithmetic cost per element relative to one plain add (1.0 for a
    /// sum, 2.0 for multiply-accumulate). Scales the per-element term of
    /// the instruction-issue leg.
    pub flops_per_elem: f64,
    /// Output shape.
    pub output: OutputCardinality,
}

impl KernelDescriptor {
    /// The paper's kernel: one stream, one add per element, one scalar out.
    ///
    /// The GPU model is pinned (by test) to time this descriptor
    /// bit-identically to the original hard-coded reduction model.
    pub const fn sum_reduction(elem: DType, acc: DType) -> Self {
        KernelDescriptor {
            elem,
            acc,
            combine: CombinePattern::Reduce,
            input_streams: 1,
            flops_per_elem: 1.0,
            output: OutputCardinality::Scalar,
        }
    }

    /// Dot product: two streams, multiply-accumulate, one scalar out.
    pub const fn dot(elem: DType, acc: DType) -> Self {
        KernelDescriptor {
            elem,
            acc,
            combine: CombinePattern::AxpyDot,
            input_streams: 2,
            flops_per_elem: 2.0,
            output: OutputCardinality::Scalar,
        }
    }

    /// Inclusive prefix sum: one stream in, one accumulator out per element.
    pub const fn scan(elem: DType, acc: DType) -> Self {
        KernelDescriptor {
            elem,
            acc,
            combine: CombinePattern::Scan,
            input_streams: 1,
            flops_per_elem: 1.0,
            output: OutputCardinality::PerElement,
        }
    }

    /// Row-major GEMV: matrix stream + vector stream, multiply-accumulate,
    /// one accumulator per `cols`-element row.
    pub const fn gemv_row(elem: DType, acc: DType, cols: u32) -> Self {
        KernelDescriptor {
            elem,
            acc,
            combine: CombinePattern::GemvRow,
            input_streams: 2,
            flops_per_elem: 2.0,
            output: OutputCardinality::PerRow { cols },
        }
    }

    /// Descriptor for a [`WorkloadKind`] with the given dtypes.
    pub const fn for_kind(kind: WorkloadKind, elem: DType, acc: DType) -> Self {
        match kind {
            WorkloadKind::Dot => Self::dot(elem, acc),
            WorkloadKind::Scan => Self::scan(elem, acc),
            WorkloadKind::Gemv { cols } => Self::gemv_row(elem, acc, cols),
        }
    }

    /// Total input bytes the kernel reads for `m` elements of the primary
    /// stream (secondary streams are counted at the same length; the GEMV
    /// vector re-read per row is charged as a full second stream, i.e. no
    /// cache credit — the pessimistic streaming assumption).
    pub const fn input_bytes(&self, m: u64) -> u64 {
        m * self.elem.size_bytes() * self.input_streams as u64
    }

    /// Output bytes written back to memory for `m` input elements.
    pub const fn output_bytes(&self, m: u64) -> u64 {
        match self.output {
            OutputCardinality::Scalar => 0,
            OutputCardinality::PerElement => m * self.acc.size_bytes(),
            OutputCardinality::PerRow { cols } => (m / cols as u64) * self.acc.size_bytes(),
        }
    }

    /// Total bytes moved (input + output) for `m` input elements.
    pub const fn bytes_moved(&self, m: u64) -> u64 {
        self.input_bytes(m) + self.output_bytes(m)
    }

    /// Arithmetic intensity in flops per byte moved.
    pub fn arithmetic_intensity(&self, m: u64) -> f64 {
        self.flops_per_elem * m as f64 / self.bytes_moved(m) as f64
    }
}

/// Name of a non-reduction workload the stack serves — the compact tag the
/// planner's work items carry (the full [`KernelDescriptor`] is derived from
/// it plus the case dtypes, keeping cache keys small and stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WorkloadKind {
    /// Dot product of two `m`-element streams.
    Dot,
    /// Inclusive prefix sum over `m` elements.
    Scan,
    /// Row-major matrix-vector product over `m / cols` rows.
    Gemv {
        /// Row length in elements.
        cols: u32,
    },
}

impl WorkloadKind {
    /// Short lowercase name as used in commands and tables.
    pub const fn name(self) -> &'static str {
        match self {
            WorkloadKind::Dot => "dot",
            WorkloadKind::Scan => "scan",
            WorkloadKind::Gemv { .. } => "gemv",
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_reduction_is_the_identity_shape() {
        let d = KernelDescriptor::sum_reduction(DType::I32, DType::I32);
        assert_eq!(d.input_streams, 1);
        assert_eq!(d.flops_per_elem, 1.0);
        assert_eq!(d.combine, CombinePattern::Reduce);
        assert_eq!(d.output_bytes(1000), 0);
        assert_eq!(d.input_bytes(1000), 4000);
    }

    #[test]
    fn dot_reads_two_streams() {
        let d = KernelDescriptor::dot(DType::F64, DType::F64);
        assert_eq!(d.input_bytes(100), 2 * 100 * 8);
        assert_eq!(d.output_bytes(100), 0);
    }

    #[test]
    fn scan_writes_the_accumulator_stream() {
        let d = KernelDescriptor::scan(DType::I8, DType::I64);
        assert_eq!(d.input_bytes(100), 100);
        assert_eq!(d.output_bytes(100), 800);
        assert_eq!(d.bytes_moved(100), 900);
    }

    #[test]
    fn gemv_writes_one_output_per_row() {
        let d = KernelDescriptor::gemv_row(DType::F32, DType::F32, 256);
        assert_eq!(d.output_bytes(1024), 4 * 4);
        assert_eq!(d.input_bytes(1024), 2 * 1024 * 4);
    }

    #[test]
    fn arithmetic_intensity_orders_workloads() {
        let m = 1 << 20;
        let sum = KernelDescriptor::sum_reduction(DType::F32, DType::F32);
        let dot = KernelDescriptor::dot(DType::F32, DType::F32);
        // Dot does 2 flops over 2 streams — same intensity as the sum's
        // 1 flop over 1 stream; a scan moves more bytes per flop.
        let scan = KernelDescriptor::scan(DType::F32, DType::F32);
        assert_eq!(
            sum.arithmetic_intensity(m).to_bits(),
            dot.arithmetic_intensity(m).to_bits()
        );
        assert!(scan.arithmetic_intensity(m) < sum.arithmetic_intensity(m));
    }

    #[test]
    fn for_kind_round_trips() {
        let d = KernelDescriptor::for_kind(WorkloadKind::Gemv { cols: 64 }, DType::F64, DType::F64);
        assert_eq!(d.output, OutputCardinality::PerRow { cols: 64 });
        assert_eq!(WorkloadKind::Gemv { cols: 64 }.name(), "gemv");
        assert_eq!(WorkloadKind::Dot.to_string(), "dot");
    }
}
