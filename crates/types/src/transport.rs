//! Stream transports for the serve/router wire protocol.
//!
//! The framed line protocol (see [`crate::wire`]) is transport-agnostic
//! by construction: every producer writes whole frames and every
//! consumer reads them back byte-exactly, so the only thing a transport
//! has to provide is an ordered, reliable byte stream. This module is
//! the one place that knows which byte streams exist:
//!
//! * **unix** — a `UnixStream` on a filesystem socket path. Same-host
//!   only; this is the default everywhere and what `ghr router
//!   --workers N` spawns its children on.
//! * **tcp** — a `TcpStream` on `HOST:PORT`. This is what makes the
//!   cluster tier cross-host: a worker on another machine binds
//!   `ghr serve --tcp 0.0.0.0:7421` and the router attaches it with
//!   `--attach-tcp host:7421`.
//!
//! An [`Endpoint`] names one listening place, a [`Listener`] accepts
//! connections on it, and a [`Stream`] is one established connection.
//! `Stream` implements `Read` + `Write`, so all framing code upstream
//! (`ghr serve`, `ghr router`, `ghr client`, `ghr loadgen`) is written
//! once against it and is byte-identical across transports — CI
//! byte-diffs a routed response over unix against the same response
//! over TCP.
//!
//! ## Security posture
//!
//! The wire protocol is unauthenticated, so exposure is controlled at
//! bind time. A bare port (`--tcp 7421`) binds **loopback** — reachable
//! only from this host, the safe default. Binding an external interface
//! requires naming it explicitly (`--tcp 0.0.0.0:7421`), and
//! [`Endpoint::is_loopback`] lets the server warn when that happens.
//! Unix sockets inherit filesystem permissions and are always
//! host-local.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

/// How long a TCP connect attempt waits before the peer is declared
/// unreachable. A dead cross-host worker must fail fast enough for the
/// router's re-route to stay invisible to clients; the OS default (a
/// minutes-long SYN backoff) is not a serving-tier timeout.
pub const TCP_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// One place the wire protocol can listen or connect: a unix socket
/// path, or a TCP `host:port`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A filesystem unix-socket path (host-local).
    Unix(String),
    /// A TCP socket address as `host:port` (cross-host capable).
    Tcp(String),
}

impl Endpoint {
    /// A unix-socket endpoint at `path`.
    pub fn unix(path: impl Into<String>) -> Endpoint {
        Endpoint::Unix(path.into())
    }

    /// Parse a `--tcp` address: `HOST:PORT`, or a bare `PORT` which
    /// binds **loopback** (`127.0.0.1`) — external exposure must be
    /// named explicitly (`0.0.0.0:PORT`).
    pub fn tcp(spec: &str) -> Result<Endpoint, String> {
        if spec.is_empty() {
            return Err("empty tcp address (need HOST:PORT or PORT)".to_string());
        }
        if let Ok(port) = spec.parse::<u16>() {
            return Ok(Endpoint::Tcp(format!("127.0.0.1:{port}")));
        }
        match spec.rsplit_once(':') {
            Some((host, port)) if !host.is_empty() && port.parse::<u16>().is_ok() => {
                Ok(Endpoint::Tcp(spec.to_string()))
            }
            _ => Err(format!(
                "bad tcp address {spec:?} (need HOST:PORT or a bare PORT, \
                 which binds 127.0.0.1)"
            )),
        }
    }

    /// Parse a spec that may name either transport — the `ghr-join`
    /// control frame's operand. `tcp:HOST:PORT` (or `tcp://HOST:PORT`)
    /// is TCP; `unix:PATH` or any bare path is a unix socket.
    pub fn parse(spec: &str) -> Result<Endpoint, String> {
        if let Some(rest) = spec
            .strip_prefix("tcp://")
            .or_else(|| spec.strip_prefix("tcp:"))
        {
            Endpoint::tcp(rest)
        } else if let Some(rest) = spec.strip_prefix("unix:") {
            if rest.is_empty() {
                Err("empty unix socket path".to_string())
            } else {
                Ok(Endpoint::unix(rest))
            }
        } else if spec.is_empty() {
            Err("empty endpoint".to_string())
        } else {
            Ok(Endpoint::unix(spec))
        }
    }

    /// Whether binding here is reachable only from this host: every
    /// unix socket, and TCP on a loopback or unspecified-loopback host.
    /// `false` means the caller is exposing an unauthenticated protocol
    /// to the network and should say so loudly.
    pub fn is_loopback(&self) -> bool {
        match self {
            Endpoint::Unix(_) => true,
            Endpoint::Tcp(addr) => {
                let host = addr.rsplit_once(':').map(|(h, _)| h).unwrap_or(addr);
                let host = host.trim_start_matches('[').trim_end_matches(']');
                host == "localhost" || host == "::1" || host.starts_with("127.")
            }
        }
    }

    /// Connect to this endpoint. TCP connects carry
    /// [`TCP_CONNECT_TIMEOUT`] and set `TCP_NODELAY` (the protocol is
    /// small request lines that must not sit in Nagle buffers).
    pub fn connect(&self) -> std::io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix sockets need a unix platform",
            )),
            Endpoint::Tcp(addr) => {
                let mut last = None;
                for sockaddr in std::net::ToSocketAddrs::to_socket_addrs(addr.as_str())? {
                    match TcpStream::connect_timeout(&sockaddr, TCP_CONNECT_TIMEOUT) {
                        Ok(stream) => {
                            let _ = stream.set_nodelay(true);
                            return Ok(Stream::Tcp(stream));
                        }
                        Err(e) => last = Some(e),
                    }
                }
                Err(last.unwrap_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::AddrNotAvailable,
                        format!("{addr:?} resolved to no address"),
                    )
                }))
            }
        }
    }

    /// Bind a listener here. A stale unix socket file from a previous
    /// run is removed first (the bind would otherwise fail on it).
    pub fn bind(&self) -> std::io::Result<Listener> {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix sockets need a unix platform",
            )),
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr.as_str())?)),
        }
    }

    /// Remove whatever the bind left on disk (the unix socket file;
    /// TCP leaves nothing).
    pub fn cleanup(&self) {
        if let Endpoint::Unix(path) = self {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Whether the socket currently accepts connections (the router's
    /// revival probe).
    pub fn probe(&self) -> bool {
        self.connect().is_ok()
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "{path}"),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// One established wire-protocol connection over either transport.
/// Implements `Read` + `Write`; framing code upstream never matches on
/// the variant.
#[derive(Debug)]
pub enum Stream {
    /// A unix-socket connection.
    #[cfg(unix)]
    Unix(UnixStream),
    /// A TCP connection.
    Tcp(TcpStream),
}

impl Stream {
    /// Clone the handle (one side buffers reads, the other writes).
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
        }
    }

    /// Set the read timeout (the poll tick that lets serving sessions
    /// observe shutdown between frames).
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    /// Half-close the write side, signalling EOF to the peer while the
    /// read side keeps draining responses.
    pub fn shutdown_write(&self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A bound wire-protocol listener over either transport.
#[derive(Debug)]
pub enum Listener {
    /// Listening on a unix socket path.
    #[cfg(unix)]
    Unix(UnixListener),
    /// Listening on a TCP address.
    Tcp(TcpListener),
}

impl Listener {
    /// Accept one pending connection. Accepted TCP streams set
    /// `TCP_NODELAY` so small frames leave immediately.
    pub fn accept(&self) -> std::io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
        }
    }

    /// Switch the listener to non-blocking accepts (the accept loops
    /// poll so they can watch the shutdown flag).
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// The actually bound address — for TCP with port 0 this is where
    /// the OS put the listener (tests bind ephemeral ports).
    pub fn local_endpoint(&self) -> Option<Endpoint> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.local_addr().ok().and_then(|a| {
                a.as_pathname()
                    .map(|p| Endpoint::unix(p.to_string_lossy().into_owned()))
            }),
            Listener::Tcp(l) => l.local_addr().ok().map(|a| Endpoint::Tcp(a.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    #[test]
    fn tcp_spec_parses_and_bare_ports_bind_loopback() {
        assert_eq!(
            Endpoint::tcp("7421").unwrap(),
            Endpoint::Tcp("127.0.0.1:7421".to_string())
        );
        assert_eq!(
            Endpoint::tcp("0.0.0.0:7421").unwrap(),
            Endpoint::Tcp("0.0.0.0:7421".to_string())
        );
        assert_eq!(
            Endpoint::tcp("node7:9000").unwrap(),
            Endpoint::Tcp("node7:9000".to_string())
        );
        for bad in ["", ":7421", "host:", "host:notaport", "host:99999"] {
            assert!(Endpoint::tcp(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn generic_parse_covers_both_transports() {
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7421").unwrap(),
            Endpoint::Tcp("127.0.0.1:7421".to_string())
        );
        assert_eq!(
            Endpoint::parse("tcp://9000").unwrap(),
            Endpoint::Tcp("127.0.0.1:9000".to_string())
        );
        assert_eq!(
            Endpoint::parse("unix:/tmp/w.sock").unwrap(),
            Endpoint::unix("/tmp/w.sock")
        );
        assert_eq!(
            Endpoint::parse("/tmp/w.sock").unwrap(),
            Endpoint::unix("/tmp/w.sock")
        );
        assert!(Endpoint::parse("").is_err());
        assert!(Endpoint::parse("unix:").is_err());
        assert!(Endpoint::parse("tcp:").is_err());
    }

    #[test]
    fn loopback_detection_gates_the_exposure_warning() {
        assert!(Endpoint::unix("/tmp/x.sock").is_loopback());
        assert!(Endpoint::tcp("7421").unwrap().is_loopback());
        assert!(Endpoint::tcp("127.0.0.1:7421").unwrap().is_loopback());
        assert!(Endpoint::tcp("localhost:7421").unwrap().is_loopback());
        assert!(Endpoint::tcp("[::1]:7421").unwrap().is_loopback());
        assert!(!Endpoint::tcp("0.0.0.0:7421").unwrap().is_loopback());
        assert!(!Endpoint::tcp("10.0.0.7:7421").unwrap().is_loopback());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for spec in ["tcp:127.0.0.1:7421", "/tmp/w.sock"] {
            let ep = Endpoint::parse(spec).unwrap();
            assert_eq!(Endpoint::parse(&ep.to_string()).unwrap(), ep);
        }
    }

    /// The same bytes cross both transports intact: bind, connect,
    /// write a frame-shaped blob, read it back.
    #[test]
    fn streams_carry_bytes_on_both_transports() {
        let dir = std::env::temp_dir().join(format!("ghr-transport-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let unix = Endpoint::unix(dir.join("t.sock").to_string_lossy().into_owned());
        let tcp_listener = Endpoint::tcp("127.0.0.1:0").unwrap().bind().unwrap();
        let tcp = tcp_listener.local_endpoint().unwrap();
        for (endpoint, listener) in [
            (unix.clone(), unix.bind().unwrap()),
            (tcp.clone(), tcp_listener),
        ] {
            let payload =
                b"ghr-response id=abc status=ok bytes=3 evals=0 cached=yes\nhi\nghr-end\n";
            let server = std::thread::spawn(move || {
                let mut conn = listener.accept().unwrap();
                let mut line = String::new();
                BufReader::new(conn.try_clone().unwrap())
                    .read_line(&mut line)
                    .unwrap();
                assert_eq!(line, "table1\n");
                conn.write_all(payload).unwrap();
            });
            let mut client = endpoint.connect().unwrap();
            client.write_all(b"table1\n").unwrap();
            client.shutdown_write().unwrap();
            let mut got = Vec::new();
            client.read_to_end(&mut got).unwrap();
            assert_eq!(got, payload, "transport {endpoint} mangled the frame");
            server.join().unwrap();
        }
        unix.cleanup();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn connecting_to_a_dead_endpoint_fails_not_hangs() {
        // Bind then drop a TCP listener: the port is closed, connect must
        // error promptly (refused), bounded by the connect timeout.
        let listener = Endpoint::tcp("127.0.0.1:0").unwrap().bind().unwrap();
        let ep = listener.local_endpoint().unwrap();
        drop(listener);
        let t0 = std::time::Instant::now();
        assert!(ep.connect().is_err());
        assert!(!ep.probe());
        assert!(t0.elapsed() < TCP_CONNECT_TIMEOUT + Duration::from_secs(2));
    }
}
