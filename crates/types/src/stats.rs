//! Small online-statistics helpers used by harnesses and benches, plus
//! the per-cache-layer warm-path ledger the engine reports.

/// The engine's warm-path cache layers, in reporting order. The first
/// four are NR-lite replicated maps (response memo, GPU point cache,
/// co-run series cache, per-`p` co-run point cache); the fifth is the
/// lock-free in-flight claim table that replaced the single-flight
/// mutex map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLayer {
    /// Whole-response memo keyed by request id.
    Response = 0,
    /// Scalar GPU/what-if point cache keyed by resolved work item.
    Point = 1,
    /// Co-run series cache keyed by co-run config.
    Series = 2,
    /// Per-`p` A2 co-run point cache.
    Corun = 3,
    /// Single-flight in-flight claim table.
    Inflight = 4,
}

impl CacheLayer {
    /// Every layer, in reporting order.
    pub const ALL: [CacheLayer; 5] = [
        CacheLayer::Response,
        CacheLayer::Point,
        CacheLayer::Series,
        CacheLayer::Corun,
        CacheLayer::Inflight,
    ];

    /// Stable lowercase name used in JSON and table output.
    pub fn name(self) -> &'static str {
        match self {
            CacheLayer::Response => "response",
            CacheLayer::Point => "point",
            CacheLayer::Series => "series",
            CacheLayer::Corun => "corun",
            CacheLayer::Inflight => "inflight",
        }
    }
}

/// Warm-path accounting for one cache layer — the per-layer breakdown
/// of the engine's aggregate `warm_lock_acquisitions` / `replica_*`
/// counters, so lock-freedom is provable layer by layer, not just in
/// aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheLayerStats {
    /// Mutex acquisitions performed by warm probes of this layer that
    /// were answered with a value. Zero in replica mode once the
    /// reader's replica is synced; the in-flight claim table never
    /// takes a lock, so its entry is structurally zero.
    pub warm_lock_acquisitions: u64,
    /// Distinct records appended to this layer's replica log
    /// (publication is first-write-wins, so this equals the number of
    /// distinct published keys).
    pub replica_published: u64,
    /// Replica reads that had to replay the log tail under its lock (a
    /// thread's first read, or its first read after a publication).
    pub replica_syncs: u64,
    /// Warm reads answered wait-free from an already-synced replica
    /// snapshot — zero mutex acquisitions.
    pub replica_snapshot_hits: u64,
    /// Shallow bytes held by this layer's append-only log (bounded by
    /// distinct published keys; for the claim table, its fixed slot
    /// array).
    pub replica_log_bytes: u64,
}

impl CacheLayerStats {
    /// Add another layer's counters into this one (the aggregate view).
    pub fn accumulate(&mut self, other: &CacheLayerStats) {
        self.warm_lock_acquisitions += other.warm_lock_acquisitions;
        self.replica_published += other.replica_published;
        self.replica_syncs += other.replica_syncs;
        self.replica_snapshot_hits += other.replica_snapshot_hits;
        self.replica_log_bytes += other.replica_log_bytes;
    }
}

/// Online summary statistics (count / min / max / mean / variance) over a
/// stream of `f64` samples, using Welford's algorithm so that long series
/// (e.g. per-repetition kernel times) stay numerically stable.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Population standard deviation, or `None` if empty.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.stddev(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn known_values() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.stddev().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..37].iter().copied().collect();
        let right: Summary = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        s.merge(&Summary::new());
        assert_eq!(s.count(), 2);
        let mut e = Summary::new();
        e.merge(&s);
        assert_eq!(e.count(), 2);
        assert_eq!(e.max(), Some(2.0));
    }
}
