//! Small online-statistics helpers used by harnesses and benches, plus
//! the per-cache-layer warm-path ledger the engine reports.

/// The engine's warm-path cache layers, in reporting order. The first
/// four are NR-lite replicated maps (response memo, GPU point cache,
/// co-run series cache, per-`p` co-run point cache); the fifth is the
/// lock-free in-flight claim table that replaced the single-flight
/// mutex map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLayer {
    /// Whole-response memo keyed by request id.
    Response = 0,
    /// Scalar GPU/what-if point cache keyed by resolved work item.
    Point = 1,
    /// Co-run series cache keyed by co-run config.
    Series = 2,
    /// Per-`p` A2 co-run point cache.
    Corun = 3,
    /// Single-flight in-flight claim table.
    Inflight = 4,
}

impl CacheLayer {
    /// Every layer, in reporting order.
    pub const ALL: [CacheLayer; 5] = [
        CacheLayer::Response,
        CacheLayer::Point,
        CacheLayer::Series,
        CacheLayer::Corun,
        CacheLayer::Inflight,
    ];

    /// Stable lowercase name used in JSON and table output.
    pub fn name(self) -> &'static str {
        match self {
            CacheLayer::Response => "response",
            CacheLayer::Point => "point",
            CacheLayer::Series => "series",
            CacheLayer::Corun => "corun",
            CacheLayer::Inflight => "inflight",
        }
    }
}

/// Warm-path accounting for one cache layer — the per-layer breakdown
/// of the engine's aggregate `warm_lock_acquisitions` / `replica_*`
/// counters, so lock-freedom is provable layer by layer, not just in
/// aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheLayerStats {
    /// Mutex acquisitions performed by warm probes of this layer that
    /// were answered with a value. Zero in replica mode once the
    /// reader's replica is synced; the in-flight claim table never
    /// takes a lock, so its entry is structurally zero.
    pub warm_lock_acquisitions: u64,
    /// Distinct records appended to this layer's replica log
    /// (publication is first-write-wins, so this equals the number of
    /// distinct published keys).
    pub replica_published: u64,
    /// Replica reads that had to replay the log tail under its lock (a
    /// thread's first read, or its first read after a publication).
    pub replica_syncs: u64,
    /// Warm reads answered wait-free from an already-synced replica
    /// snapshot — zero mutex acquisitions.
    pub replica_snapshot_hits: u64,
    /// Shallow bytes held by this layer's append-only log (bounded by
    /// distinct published keys; for the claim table, its fixed slot
    /// array).
    pub replica_log_bytes: u64,
}

impl CacheLayerStats {
    /// Add another layer's counters into this one (the aggregate view).
    pub fn accumulate(&mut self, other: &CacheLayerStats) {
        self.warm_lock_acquisitions += other.warm_lock_acquisitions;
        self.replica_published += other.replica_published;
        self.replica_syncs += other.replica_syncs;
        self.replica_snapshot_hits += other.replica_snapshot_hits;
        self.replica_log_bytes += other.replica_log_bytes;
    }
}

/// One worker's row in the router's forwarding ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterWorkerStats {
    /// Worker name (`worker-0`, `worker-1`, … or the attached socket
    /// path's stem).
    pub name: String,
    /// Whether the worker was live when the ledger was rendered.
    pub alive: bool,
    /// Requests forwarded to this worker and answered (ok or error
    /// frames — the worker responded).
    pub forwarded: u64,
    /// Requests rejected at the router with `reason=overload` because
    /// this worker's in-flight budget was spent.
    pub rejected: u64,
    /// Requests whose ring position landed on this worker while it was
    /// (or proved to be) dead, and were re-routed to a ring successor.
    pub rerouted: u64,
    /// This worker's share of the hash ring's key space, in [0, 1].
    /// Dead workers keep their share (the ring is stable); routing
    /// simply walks past them.
    pub ring_share: f64,
}

/// The router's whole forwarding ledger: per-worker counters plus the
/// requests the router itself answered (rejections and dead-cluster
/// errors). Rendered as the `--stats-json` object at drain.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouterStats {
    /// One row per worker, in ring order.
    pub workers: Vec<RouterWorkerStats>,
    /// Request lines received across all router sessions.
    pub requests: u64,
    /// Lines rejected at the router's own framing layer.
    pub malformed: u64,
    /// Requests answered with `reason=no-live-worker` (whole ring dead).
    pub unrouted: u64,
}

impl RouterStats {
    /// Total requests forwarded to any worker.
    pub fn forwarded(&self) -> u64 {
        self.workers.iter().map(|w| w.forwarded).sum()
    }

    /// Total requests rejected on a spent worker budget.
    pub fn rejected(&self) -> u64 {
        self.workers.iter().map(|w| w.rejected).sum()
    }

    /// Total requests that had to leave their home worker's range.
    pub fn rerouted(&self) -> u64 {
        self.workers.iter().map(|w| w.rerouted).sum()
    }

    /// The ledger as one JSON object (std-only; the router's
    /// `--stats-json` output, readable back via [`crate::Json`]).
    pub fn to_json(&self) -> String {
        use crate::pipeline::{json_escape, json_f64};
        use std::fmt::Write as _;
        let mut s = String::with_capacity(128 + self.workers.len() * 128);
        let _ = write!(
            s,
            "{{\"router\":{{\"requests\":{},\"forwarded\":{},\"rejected\":{},\
             \"rerouted\":{},\"malformed\":{},\"unrouted\":{},\"workers\":[",
            self.requests,
            self.forwarded(),
            self.rejected(),
            self.rerouted(),
            self.malformed,
            self.unrouted,
        );
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"alive\":{},\"forwarded\":{},\
                 \"rejected\":{},\"rerouted\":{},\"ring_share\":{}}}",
                json_escape(&w.name),
                w.alive,
                w.forwarded,
                w.rejected,
                w.rerouted,
                json_f64(w.ring_share),
            );
        }
        s.push_str("]}}");
        s
    }

    /// One human-readable line per worker plus a totals line, for the
    /// drain log.
    pub fn summary_lines(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for w in &self.workers {
            let _ = writeln!(
                s,
                "router:   {}: {} forwarded, {} rejected, {} rerouted, \
                 {:.1}% of ring{}",
                w.name,
                w.forwarded,
                w.rejected,
                w.rerouted,
                w.ring_share * 100.0,
                if w.alive { "" } else { " (dead)" }
            );
        }
        let _ = write!(
            s,
            "router: {} request(s): {} forwarded, {} rejected, {} rerouted, \
             {} malformed, {} unrouted",
            self.requests,
            self.forwarded(),
            self.rejected(),
            self.rerouted(),
            self.malformed,
            self.unrouted,
        );
        s
    }
}

/// Online summary statistics (count / min / max / mean / variance) over a
/// stream of `f64` samples, using Welford's algorithm so that long series
/// (e.g. per-repetition kernel times) stay numerically stable.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Population standard deviation, or `None` if empty.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(name: &str, forwarded: u64, alive: bool) -> RouterWorkerStats {
        RouterWorkerStats {
            name: name.to_string(),
            alive,
            forwarded,
            rejected: 1,
            rerouted: 2,
            ring_share: 0.5,
        }
    }

    #[test]
    fn router_stats_totals_and_json_round_trip() {
        let stats = RouterStats {
            workers: vec![worker("worker-0", 10, true), worker("worker-1", 5, false)],
            requests: 21,
            malformed: 1,
            unrouted: 2,
        };
        assert_eq!(stats.forwarded(), 15);
        assert_eq!(stats.rejected(), 2);
        assert_eq!(stats.rerouted(), 4);
        let json = stats.to_json();
        let doc = crate::Json::parse(&json).expect("ledger parses back");
        assert_eq!(
            doc.path(&["router", "forwarded"]).unwrap().as_f64(),
            Some(15.0)
        );
        assert_eq!(
            doc.path(&["router", "unrouted"]).unwrap().as_f64(),
            Some(2.0)
        );
        let workers = doc
            .path(&["router", "workers"])
            .and_then(crate::Json::as_arr)
            .unwrap();
        assert_eq!(workers.len(), 2);
        assert_eq!(
            workers[1].get("alive"),
            Some(&crate::Json::Bool(false)),
            "{json}"
        );
        assert_eq!(workers[0].get("ring_share").unwrap().as_f64(), Some(0.5));
        let lines = stats.summary_lines();
        assert!(lines.contains("worker-1: 5 forwarded"), "{lines}");
        assert!(lines.contains("(dead)"), "{lines}");
        assert!(lines.contains("21 request(s)"), "{lines}");
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.stddev(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn known_values() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.stddev().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..37].iter().copied().collect();
        let right: Summary = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        s.merge(&Summary::new());
        assert_eq!(s.count(), 2);
        let mut e = Summary::new();
        e.merge(&s);
        assert_eq!(e.count(), 2);
        assert_eq!(e.max(), Some(2.0));
    }
}
