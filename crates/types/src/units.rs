//! Physical units used by the performance models.
//!
//! All models compute with `f64` seconds / bytes-per-second internally; the
//! newtypes exist so that a bandwidth can never be accidentally added to a
//! time and so that display formatting is consistent with the paper
//! (decimal GB/s, i.e. `1e9` bytes per second — the paper's
//! `bandwidth = 1e-9 * M * sizeof(T) * N / elapsed_time`).

use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A byte count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Construct from a number of kibibytes.
    #[inline]
    pub const fn kib(k: u64) -> Self {
        Bytes(k * 1024)
    }

    /// Construct from a number of mebibytes.
    #[inline]
    pub const fn mib(m: u64) -> Self {
        Bytes(m * 1024 * 1024)
    }

    /// Construct from a number of gibibytes.
    #[inline]
    pub const fn gib(g: u64) -> Self {
        Bytes(g * 1024 * 1024 * 1024)
    }

    /// The raw byte count as `f64` (for rate arithmetic).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Decimal gigabytes (`1e9` bytes), the unit the paper reports in.
    #[inline]
    pub fn as_gb(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl std::fmt::Display for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        if b >= 1 << 30 {
            write!(f, "{:.2} GiB", b as f64 / (1u64 << 30) as f64)
        } else if b >= 1 << 20 {
            write!(f, "{:.2} MiB", b as f64 / (1u64 << 20) as f64)
        } else if b >= 1 << 10 {
            write!(f, "{:.2} KiB", b as f64 / 1024.0)
        } else {
            write!(f, "{b} B")
        }
    }
}

/// A data rate in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bandwidth(pub f64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Construct from decimal gigabytes per second (the paper's unit).
    #[inline]
    pub fn gbps(gb: f64) -> Self {
        Bandwidth(gb * 1e9)
    }

    /// The rate in decimal gigabytes per second.
    #[inline]
    pub fn as_gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// Bytes per second as a raw `f64`.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Time needed to move `bytes` at this rate.
    ///
    /// Returns [`SimTime::ZERO`] for zero bytes; panics on zero bandwidth
    /// with a nonzero transfer because that indicates a misconfigured model.
    #[inline]
    pub fn time_for(self, bytes: Bytes) -> SimTime {
        if bytes.0 == 0 {
            return SimTime::ZERO;
        }
        assert!(
            self.0 > 0.0,
            "zero bandwidth cannot move {bytes}; model misconfigured"
        );
        SimTime(bytes.as_f64() / self.0)
    }

    /// The smaller of two bandwidths.
    #[inline]
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl std::fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} GB/s", self.as_gbps())
    }
}

/// A point or span on the simulated clock, in seconds.
///
/// Simulated time is distinct from wall-clock time: the performance models
/// advance it analytically, so a 200-repetition run over 4 GB completes in
/// microseconds of host time.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimTime(pub f64);

impl SimTime {
    /// Zero duration / epoch.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds.
    #[inline]
    pub fn secs(s: f64) -> Self {
        SimTime(s)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn millis(ms: f64) -> Self {
        SimTime(ms * 1e-3)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn micros(us: f64) -> Self {
        SimTime(us * 1e-6)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub fn nanos(ns: f64) -> Self {
        SimTime(ns * 1e-9)
    }

    /// The value in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The value in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The value in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The larger of two times (used to overlap parallel pipelines).
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Whether the span is a finite, non-negative number — every model
    /// output must satisfy this.
    #[inline]
    pub fn is_valid_span(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// Effective bandwidth of moving `bytes` within this span.
    #[inline]
    pub fn bandwidth_for(self, bytes: Bytes) -> Bandwidth {
        assert!(self.0 > 0.0, "cannot compute bandwidth over zero time");
        Bandwidth(bytes.as_f64() / self.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.0;
        if s >= 1.0 {
            write!(f, "{s:.3} s")
        } else if s >= 1e-3 {
            write!(f, "{:.3} ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3} us", s * 1e6)
        } else {
            write!(f, "{:.1} ns", s * 1e9)
        }
    }
}

/// A clock frequency in hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Frequency(pub f64);

impl Frequency {
    /// Construct from gigahertz.
    #[inline]
    pub fn ghz(g: f64) -> Self {
        Frequency(g * 1e9)
    }

    /// Construct from megahertz.
    #[inline]
    pub fn mhz(m: f64) -> Self {
        Frequency(m * 1e6)
    }

    /// Cycles per second.
    #[inline]
    pub fn hz(self) -> f64 {
        self.0
    }

    /// Duration of `cycles` clock cycles.
    #[inline]
    pub fn cycles(self, cycles: f64) -> SimTime {
        assert!(self.0 > 0.0, "zero frequency");
        SimTime(cycles / self.0)
    }
}

impl std::fmt::Display for Frequency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} GHz", self.0 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_constructors() {
        assert_eq!(Bytes::kib(1).0, 1024);
        assert_eq!(Bytes::mib(1).0, 1024 * 1024);
        assert_eq!(Bytes::gib(4).0, 4 * 1024 * 1024 * 1024);
    }

    #[test]
    fn bytes_decimal_gb_matches_paper_metric() {
        // The paper divides by 1e9, not 2^30.
        assert!((Bytes(4_194_304_000).as_gb() - 4.194304).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_time_roundtrip() {
        let bw = Bandwidth::gbps(4022.7);
        let t = bw.time_for(Bytes(4_194_304_000));
        let back = t.bandwidth_for(Bytes(4_194_304_000));
        assert!((back.as_gbps() - 4022.7).abs() < 1e-6);
    }

    #[test]
    fn zero_bytes_takes_zero_time() {
        assert_eq!(Bandwidth::gbps(100.0).time_for(Bytes::ZERO), SimTime::ZERO);
        // Even a zero-bandwidth link can "move" zero bytes.
        assert_eq!(Bandwidth::ZERO.time_for(Bytes::ZERO), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn zero_bandwidth_nonzero_transfer_panics() {
        let _ = Bandwidth::ZERO.time_for(Bytes(1));
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::millis(2.0);
        let b = SimTime::micros(500.0);
        assert!(((a + b).as_millis() - 2.5).abs() < 1e-12);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert!((a * 2.0).as_millis() - 4.0 < 1e-12);
        assert!(((a / 2.0).as_millis() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_cycles() {
        let f = Frequency::ghz(2.0);
        assert!((f.cycles(2e9).as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bytes(512).to_string(), "512 B");
        assert_eq!(Bytes::kib(2).to_string(), "2.00 KiB");
        assert_eq!(SimTime::nanos(120.0).to_string(), "120.0 ns");
        assert_eq!(Bandwidth::gbps(3795.0).to_string(), "3795.0 GB/s");
    }

    #[test]
    fn valid_span_checks() {
        assert!(SimTime::ZERO.is_valid_span());
        assert!(SimTime::secs(1.0).is_valid_span());
        assert!(!SimTime(f64::NAN).is_valid_span());
        assert!(!SimTime(-1.0).is_valid_span());
        assert!(!SimTime(f64::INFINITY).is_valid_span());
    }
}
