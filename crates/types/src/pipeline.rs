//! Crate-agnostic vocabulary for the request → plan → execute pipeline.
//!
//! `ghr-core` lowers a declarative experiment request into a plan (a
//! deduplicated DAG of cacheable work items) and then executes that plan
//! on its worker pool. The *shapes* of those reports — stable request
//! identifiers, per-stage predictions and per-stage timings — live here so
//! the CLI, the serve loop and external tooling can consume them without
//! depending on the experiment types themselves.

/// Stable identity of a request: an FNV-1a hash of its canonical render.
///
/// Identical requests hash identically across processes and platforms, so
/// the id is usable as a cross-process cache key (the engine's response
/// cache and the serve loop both key on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId(pub u64);

impl RequestId {
    /// Hash a canonical request render (FNV-1a, same constants as the
    /// engine's fingerprint hasher).
    pub fn of(canonical: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in canonical.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        RequestId(h)
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One stage of a lowered plan, as the planner predicts it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePlan {
    /// Stage label (e.g. `"table1"`, `"sweep C1 coarse"`).
    pub name: String,
    /// Independently cacheable work items in the stage (0 for an adaptive
    /// stage, whose probes are chosen at run time).
    pub items: usize,
    /// Items the planner expects to answer from a cache (in-process or
    /// persistent) without evaluating.
    pub predicted_hits: usize,
    /// Whether the stage's work is chosen adaptively while it runs (the
    /// refined sweep's binary search) rather than enumerated up front.
    pub adaptive: bool,
}

/// The planner's summary of a lowered plan — what `ghr plan` prints and
/// what the dry-run path reports without executing anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSummary {
    /// Human-readable request label(s).
    pub request: String,
    /// Stable id of the (combined) request.
    pub id: RequestId,
    /// The stages, in execution order.
    pub stages: Vec<StagePlan>,
    /// Duplicate work items dropped during lowering (a point that two
    /// requests or two stages both need is planned only once).
    pub deduped: usize,
}

impl PlanSummary {
    /// Total enumerated work items across all stages.
    pub fn items(&self) -> usize {
        self.stages.iter().map(|s| s.items).sum()
    }

    /// Total predicted cache hits across all stages.
    pub fn predicted_hits(&self) -> usize {
        self.stages.iter().map(|s| s.predicted_hits).sum()
    }

    /// Enumerated items the planner expects to actually evaluate.
    pub fn predicted_misses(&self) -> usize {
        self.items().saturating_sub(self.predicted_hits())
    }

    /// Fraction of enumerated items predicted to hit a cache. An empty
    /// plan (zero items) reports 0.0, never a division by zero.
    pub fn predicted_hit_ratio(&self) -> f64 {
        let items = self.items();
        if items == 0 {
            0.0
        } else {
            self.predicted_hits() as f64 / items as f64
        }
    }

    /// Number of adaptive (refinement) stages in the plan.
    pub fn adaptive_stages(&self) -> usize {
        self.stages.iter().filter(|s| s.adaptive).count()
    }
}

/// Wall-clock and work accounting for one executed stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage label, prefixed with its request label (e.g.
    /// `"table1/table1"`).
    pub name: String,
    /// Work items the stage walked (enumerated items for a fan stage,
    /// probes for an adaptive one).
    pub items: u64,
    /// Points freshly evaluated during the stage (0 = pure cache traffic).
    pub evaluated: u64,
    /// Wall-clock milliseconds the stage took.
    pub millis: f64,
}

/// Per-session accounting for one serve session (one stdin batch or one
/// socket connection). Sessions are independent workers over one shared
/// engine, so the server sums these with [`SessionStats::absorb`] when a
/// session drains; the engine's own counters stay the cross-session truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Response frames written (ok or error).
    pub served: u64,
    /// Requests answered with `status=ok`.
    pub ok: u64,
    /// Requests answered with `status=error` (unknown or unservable).
    pub errors: u64,
    /// Lines rejected at the framing layer (CRLF, NUL, oversized,
    /// truncated) with a `ghr-error` frame — never parsed as requests.
    pub malformed: u64,
    /// Requests answered whole from the engine's response cache.
    pub response_cache_hits: u64,
    /// Requests coalesced onto another session's in-flight evaluation.
    pub coalesced: u64,
    /// Work items freshly evaluated on behalf of this session.
    pub evals: u64,
    /// Requests rejected by admission control with a
    /// `ghr-error reason=overload` frame (never handed to the engine).
    pub overloaded: u64,
}

impl SessionStats {
    /// Fold another session's counters into this one (the server's
    /// drain-time aggregation).
    pub fn absorb(&mut self, other: &SessionStats) {
        self.served += other.served;
        self.ok += other.ok;
        self.errors += other.errors;
        self.malformed += other.malformed;
        self.response_cache_hits += other.response_cache_hits;
        self.coalesced += other.coalesced;
        self.evals += other.evals;
        self.overloaded += other.overloaded;
    }

    /// One human-readable line for the server's stderr log.
    pub fn summary_line(&self) -> String {
        format!(
            "{} served ({} ok, {} error, {} malformed), {} response hits, \
             {} coalesced, {} evals, {} overloaded",
            self.served,
            self.ok,
            self.errors,
            self.malformed,
            self.response_cache_hits,
            self.coalesced,
            self.evals,
            self.overloaded
        )
    }
}

/// Escape a string for inclusion in a JSON string literal (std-only; the
/// workspace has no serializer dependency).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number. JSON has no NaN/Infinity; those (and
/// only those) render as `null`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_id_is_stable_and_distinguishing() {
        let a = RequestId::of("Table1");
        let b = RequestId::of("Table1");
        let c = RequestId::of("WhatIf");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_string().len(), 16);
    }

    #[test]
    fn empty_plan_ratio_is_zero_not_nan() {
        let p = PlanSummary {
            request: "noop".into(),
            id: RequestId::of("noop"),
            stages: Vec::new(),
            deduped: 0,
        };
        assert_eq!(p.items(), 0);
        assert_eq!(p.predicted_hit_ratio(), 0.0);
        assert!(!p.predicted_hit_ratio().is_nan());
    }

    #[test]
    fn plan_summary_totals() {
        let p = PlanSummary {
            request: "x".into(),
            id: RequestId::of("x"),
            stages: vec![
                StagePlan {
                    name: "a".into(),
                    items: 10,
                    predicted_hits: 4,
                    adaptive: false,
                },
                StagePlan {
                    name: "b".into(),
                    items: 0,
                    predicted_hits: 0,
                    adaptive: true,
                },
            ],
            deduped: 2,
        };
        assert_eq!(p.items(), 10);
        assert_eq!(p.predicted_hits(), 4);
        assert_eq!(p.predicted_misses(), 6);
        assert_eq!(p.adaptive_stages(), 1);
        assert!((p.predicted_hit_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn session_stats_absorb_sums_every_counter() {
        let mut total = SessionStats::default();
        let a = SessionStats {
            served: 3,
            ok: 2,
            errors: 1,
            malformed: 4,
            response_cache_hits: 1,
            coalesced: 1,
            evals: 8,
            overloaded: 5,
        };
        total.absorb(&a);
        total.absorb(&a);
        assert_eq!(total.served, 6);
        assert_eq!(total.ok, 4);
        assert_eq!(total.errors, 2);
        assert_eq!(total.malformed, 8);
        assert_eq!(total.response_cache_hits, 2);
        assert_eq!(total.coalesced, 2);
        assert_eq!(total.evals, 16);
        assert_eq!(total.overloaded, 10);
        let line = total.summary_line();
        assert!(line.contains("6 served"), "{line}");
        assert!(line.contains("8 malformed"), "{line}");
        assert!(line.contains("10 overloaded"), "{line}");
    }

    #[test]
    fn json_helpers() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
