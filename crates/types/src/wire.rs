//! The serve/router wire protocol's literal strings, in one place.
//!
//! The framed line protocol (`ghr serve`, `ghr router`, `ghr client`,
//! `ghr loadgen --socket`) is defined by a handful of exact byte strings:
//! frame headers, the end-of-frame trailer, control lines, and the
//! `reason=` slugs a server rejects malformed or past-budget requests
//! with. Every producer and consumer in the workspace — the serve loop
//! that writes frames, the router that forwards them byte-identically,
//! the loadgen and client readers that parse them — uses these constants,
//! so a renamed slug is a compile-time event, not a silently broken
//! smoke script. The strings themselves are wire-frozen: clients in the
//! wild grep for them, and `tests` below pins each one.
//!
//! A response frame:
//!
//! ```text
//! ghr-response id=<hash16> status=ok|error bytes=<n> evals=<n> cached=<yes|no|coalesced>
//! <body bytes>
//! ghr-end
//! ```
//!
//! A rejection frame (body-less):
//!
//! ```text
//! ghr-error reason=<slug>
//! ghr-end
//! ```

/// First word of a response frame header (trailing space included: the
/// header always carries `id=`).
pub const RESPONSE_PREFIX: &str = "ghr-response ";

/// First word of a rejection frame, up to and including `reason=`; the
/// slug follows immediately.
pub const ERROR_PREFIX: &str = "ghr-error reason=";

/// End-of-frame trailer, its own line after the body (or directly after
/// a body-less error header).
pub const FRAME_END: &str = "ghr-end";

/// Control line that drains the whole server (vs `quit`/`exit`, which
/// end one session).
pub const SHUTDOWN_LINE: &str = "ghr-shutdown";

/// Control-line prefix that attaches a new worker to a running router
/// at runtime (`ghr-join <endpoint>`, where the endpoint is a unix
/// socket path or `tcp:HOST:PORT`). The router answers with a normal
/// response frame describing the rebalance, or
/// `ghr-error reason=join-failed` when the endpoint does not accept.
/// Router-only; a lone `ghr serve` treats the line as a request and
/// renders the usual not-servable error.
pub const JOIN_PREFIX: &str = "ghr-join ";

/// Rejection slug: the request arrived past the in-flight admission
/// budget (`--max-inflight` on a worker, `--worker-inflight` at the
/// router). Retryable by contract.
pub const REASON_OVERLOAD: &str = "overload";

/// Rejection slug: the request line ended in `\r\n` (a CRLF client).
pub const REASON_CRLF: &str = "crlf-line-ending";

/// Rejection slug: the request line contained an interior NUL byte.
pub const REASON_NUL: &str = "nul-byte";

/// Rejection slug: the request line exceeded the frame cap
/// (`--max-frame`).
pub const REASON_OVERSIZED: &str = "oversized-line";

/// Rejection slug: the request line was not valid UTF-8.
pub const REASON_INVALID_UTF8: &str = "invalid-utf8";

/// Rejection slug: input ended mid-line (no final newline).
pub const REASON_TRUNCATED: &str = "truncated-frame";

/// Rejection slug: the router found no live worker for the request (the
/// whole ring is dead). Router-only; a single `ghr serve` never emits it.
pub const REASON_NO_WORKER: &str = "no-live-worker";

/// Rejection slug: a `ghr-join` control frame named an endpoint the
/// router could not parse or connect to. Router-only.
pub const REASON_JOIN_FAILED: &str = "join-failed";

/// One full rejection frame for `reason`, ready to write.
pub fn error_frame(reason: &str) -> String {
    format!("{ERROR_PREFIX}{reason}\n{FRAME_END}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The wire strings are frozen: external clients parse these exact
    /// bytes. Renaming a constant is fine; changing its value is a
    /// protocol break and must fail here first.
    #[test]
    fn wire_strings_are_pinned() {
        assert_eq!(RESPONSE_PREFIX, "ghr-response ");
        assert_eq!(ERROR_PREFIX, "ghr-error reason=");
        assert_eq!(FRAME_END, "ghr-end");
        assert_eq!(SHUTDOWN_LINE, "ghr-shutdown");
        assert_eq!(JOIN_PREFIX, "ghr-join ");
        assert_eq!(REASON_OVERLOAD, "overload");
        assert_eq!(REASON_CRLF, "crlf-line-ending");
        assert_eq!(REASON_NUL, "nul-byte");
        assert_eq!(REASON_OVERSIZED, "oversized-line");
        assert_eq!(REASON_INVALID_UTF8, "invalid-utf8");
        assert_eq!(REASON_TRUNCATED, "truncated-frame");
        assert_eq!(REASON_NO_WORKER, "no-live-worker");
        assert_eq!(REASON_JOIN_FAILED, "join-failed");
    }

    #[test]
    fn error_frame_is_two_lines_and_body_less() {
        let frame = error_frame(REASON_OVERLOAD);
        assert_eq!(frame, "ghr-error reason=overload\nghr-end\n");
        assert_eq!(frame.lines().count(), 2);
    }

    /// Every slug is a single lowercase-kebab word — it must survive
    /// being embedded in a one-line header unquoted.
    #[test]
    fn reason_slugs_are_header_safe() {
        for slug in [
            REASON_OVERLOAD,
            REASON_CRLF,
            REASON_NUL,
            REASON_OVERSIZED,
            REASON_INVALID_UTF8,
            REASON_TRUNCATED,
            REASON_NO_WORKER,
            REASON_JOIN_FAILED,
        ] {
            assert!(
                slug.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-'),
                "{slug:?}"
            );
            assert!(!slug.is_empty());
        }
    }
}
