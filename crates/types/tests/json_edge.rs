//! Edge-case coverage for the std-only JSON reader the router's stats
//! round-trip (and `ghr bench diff`) leans on: escape sequences inside
//! object *keys*, exponent-form numbers, deep nesting, and a fuzz-ish
//! corpus of truncated documents that must all fail with a byte offset
//! inside the source.

use ghr_types::{Json, JsonError};

#[test]
fn nested_escapes_in_keys_decode_and_look_up() {
    // Keys with escapes at every position, including a key that is
    // itself a JSON-looking string once decoded.
    let doc = Json::parse(
        r#"{"plain": 1, "a\"b": 2, "tab\there": 3, "\\backslash": 4,
           "{\"inner\": [1]}": 5, "uni\u00e9\uD83D\uDE00": 6, "": 7}"#,
    )
    .unwrap();
    assert_eq!(doc.get("plain").unwrap().as_f64(), Some(1.0));
    assert_eq!(doc.get("a\"b").unwrap().as_f64(), Some(2.0));
    assert_eq!(doc.get("tab\there").unwrap().as_f64(), Some(3.0));
    assert_eq!(doc.get("\\backslash").unwrap().as_f64(), Some(4.0));
    // The decoded key is a literal JSON fragment; lookup is by the
    // decoded string, never re-parsed.
    assert_eq!(doc.get("{\"inner\": [1]}").unwrap().as_f64(), Some(5.0));
    assert_eq!(doc.get("unié😀").unwrap().as_f64(), Some(6.0));
    assert_eq!(doc.get("").unwrap().as_f64(), Some(7.0));
    // A nested object whose key also carries escapes, reached via path.
    let nested = Json::parse(r#"{"outer\n": {"in\"ner": 42}}"#).unwrap();
    assert_eq!(
        nested.path(&["outer\n", "in\"ner"]).unwrap().as_f64(),
        Some(42.0)
    );
}

#[test]
fn exponent_form_numbers_parse_to_the_right_values() {
    for (src, want) in [
        ("1e3", 1000.0),
        ("1E3", 1000.0),
        ("1e+3", 1000.0),
        ("-2.5e-2", -0.025),
        ("0e0", 0.0),
        ("-0E+0", -0.0),
        ("6.02e23", 6.02e23),
        ("1.7976931348623157e308", f64::MAX),
        ("5e-324", 5e-324),
        // Overflows f64: parses as infinity per strtod semantics, but
        // JSON has no Infinity — our reader must reject or saturate
        // consistently. `f64::from_str` saturates to inf, which `parse`
        // accepts; pin that behavior so a change is visible.
        ("1e400", f64::INFINITY),
    ] {
        let v = Json::parse(src).unwrap().as_f64().unwrap();
        assert_eq!(v, want, "{src}");
    }
    // Exponent forms inside arrays and objects, as writers emit them.
    let doc = Json::parse(r#"{"rates": [6.697e6, 1.2E-3, 4e0]}"#).unwrap();
    let rates = doc.get("rates").unwrap().as_arr().unwrap();
    assert_eq!(rates[0].as_f64(), Some(6.697e6));
    assert_eq!(rates[1].as_f64(), Some(1.2e-3));
    assert_eq!(rates[2].as_f64(), Some(4.0));
    // Malformed exponents fail, with the offset at the number.
    for bad in ["1e", "1e+", "2.5e-", "--1e3", "1e3e3"] {
        let err = Json::parse(bad).expect_err(bad);
        assert!(err.at <= bad.len(), "{bad}: {err}");
    }
}

#[test]
fn deep_arrays_parse_and_index() {
    // 64 levels of nesting — deep enough to exercise recursion, shallow
    // enough to never threaten a test-thread stack.
    const DEPTH: usize = 64;
    let mut src = String::new();
    for _ in 0..DEPTH {
        src.push('[');
    }
    src.push_str("7.5");
    for _ in 0..DEPTH {
        src.push(']');
    }
    let mut node = Json::parse(&src).unwrap();
    for _ in 0..DEPTH {
        let arr = node.as_arr().expect("still an array");
        assert_eq!(arr.len(), 1);
        node = arr[0].clone();
    }
    assert_eq!(node.as_f64(), Some(7.5));

    // A wide-and-deep mix: arrays of objects of arrays.
    let doc = Json::parse(r#"[{"a": [[1], [2, [3]]]}, {"a": []}]"#).unwrap();
    let first = &doc.as_arr().unwrap()[0];
    let a = first.get("a").unwrap().as_arr().unwrap();
    assert_eq!(
        a[1].as_arr().unwrap()[1].as_arr().unwrap()[0].as_f64(),
        Some(3.0)
    );
}

/// Every strict prefix of a valid document must fail to parse (no prefix
/// of these documents is itself a complete document), and the error's
/// byte offset must land inside the truncated source — a "sane offset"
/// is one a reader can actually point at.
#[test]
fn truncated_document_corpus_errors_with_sane_offsets() {
    let corpus = [
        r#"{"a": 1, "b": [true, null], "c": {"d": "e\nf"}}"#,
        r#"[1.5e-3, "two", {"three": [4]}]"#,
        r#"{"router":{"workers":[{"name":"worker-0","ring_share":0.5}]}}"#,
        "{\"\\u0041\": [1e3, -2, \"\\uD83D\\uDE00\"]}",
        "   {\"padded\": 0}  ",
    ];
    for doc in corpus {
        assert!(
            Json::parse(doc).is_ok(),
            "corpus entry must be valid: {doc}"
        );
        let full = doc.trim_end();
        for cut in 0..full.len() {
            // Cut on a char boundary only; mid-UTF-8 cuts can't be
            // constructed from a &str slice anyway.
            if !full.is_char_boundary(cut) {
                continue;
            }
            let prefix = &full[..cut];
            let err: JsonError = match Json::parse(prefix) {
                Ok(v) => panic!("prefix {prefix:?} of {doc:?} parsed as {v:?}"),
                Err(e) => e,
            };
            assert!(
                err.at <= prefix.len(),
                "offset {} outside truncated source (len {}): {err} for {prefix:?}",
                err.at,
                prefix.len()
            );
            assert!(!err.message.is_empty(), "{prefix:?}");
            // Display embeds the offset for humans.
            assert!(err.to_string().contains("at byte"), "{err}");
        }
    }
}
