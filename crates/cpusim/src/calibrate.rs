//! Calibrate the CPU loop model against *measured* kernel throughput.
//!
//! `ghr-gpusim` fits its model against the paper's Table 1; the CPU model
//! has no such table — the paper only reports the co-run composites — so
//! its compute-side parameters ([`CpuModelParams::elems_per_cycle_4b`] and
//! [`CpuModelParams::widen_i8_penalty`]) were datasheet estimates. This
//! module closes the loop with the real substrate: feed it samples from
//! the std-only microbench harness (`ghr-parallel::microbench`, surfaced
//! as `ghr bench` / `ghr calibrate cpu`) and it fits those two parameters
//! so the modelled SIMD compute rate tracks what the kernels actually
//! sustain, then reports the per-case residual.
//!
//! Only the *compute* leg is fitted. The memory leg keeps the Grace
//! datasheet STREAM numbers: the build host is not a Grace, so measured
//! memory bandwidth says nothing about LPDDR5X, but the kernel's
//! instruction-throughput shape (lanes x width-scale / widening penalty)
//! transfers across machines once normalized by clock rate.
//!
//! The model form is log-linear in each parameter, so the fit is a
//! geometric-mean update per parameter group (4-byte and 8-byte samples
//! pin `elems_per_cycle_4b`; `i8` samples pin `widen_i8_penalty`).
//! Iterating the two closed-form updates converges in a couple of rounds;
//! the iteration count and final residual are reported so CI can assert
//! convergence.

use crate::{CpuModel, CpuModelParams};
use ghr_machine::CpuSpec;
use ghr_types::{DType, GhrError, Result};

/// One measured point from the microbench harness, in model units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredSample {
    /// Element type that was reduced.
    pub dtype: DType,
    /// Unroll factor the kernel ran with (recorded for the report only).
    pub v: usize,
    /// Worker threads the measurement used.
    pub threads: u32,
    /// Sustained elements per second at the best repetition.
    pub elems_per_sec: f64,
}

/// Residual of one dtype after the fit: measured vs modelled compute rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseResidual {
    /// Element type.
    pub dtype: DType,
    /// Measured elements/second (geometric mean over that dtype's samples).
    pub measured_eps: f64,
    /// Modelled compute rate under the fitted parameters.
    pub modeled_eps: f64,
}

impl CaseResidual {
    /// Relative error of the model against the measurement.
    pub fn rel_err(&self) -> f64 {
        (self.modeled_eps - self.measured_eps).abs() / self.measured_eps.max(1e-12)
    }
}

/// Outcome of a CPU-model calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuFit {
    /// The fitted parameters (overhead is left at its default — the
    /// microbench times the kernel body, not the fork/join).
    pub params: CpuModelParams,
    /// Parameters the fit started from.
    pub start: CpuModelParams,
    /// Mean relative error across all samples before the fit.
    pub start_err: f64,
    /// Mean relative error across all samples after the fit.
    pub err: f64,
    /// Update rounds until the parameters stopped moving.
    pub iterations: u32,
    /// Whether the iteration reached a fixed point within the round limit
    /// (the CI smoke test asserts this).
    pub converged: bool,
    /// Per-dtype residual table for the report.
    pub residuals: Vec<CaseResidual>,
}

/// Modelled compute rate (elements/second) for one sample under `params`.
fn model_rate(spec: &CpuSpec, params: &CpuModelParams, s: &MeasuredSample) -> f64 {
    CpuModel::with_params(spec.clone(), *params).compute_rate(s.dtype, s.threads)
}

/// Mean relative error of the modelled compute rate over `samples`.
pub fn mean_rel_err(spec: &CpuSpec, params: &CpuModelParams, samples: &[MeasuredSample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples
        .iter()
        .map(|s| {
            let m = model_rate(spec, params, s);
            (m - s.elems_per_sec).abs() / s.elems_per_sec.max(1e-12)
        })
        .sum::<f64>()
        / samples.len() as f64
}

/// Geometric mean of `measured / modelled` over a sample subset; `None`
/// when the subset is empty.
fn geo_mean_ratio(
    spec: &CpuSpec,
    params: &CpuModelParams,
    samples: &[MeasuredSample],
    keep: impl Fn(&MeasuredSample) -> bool,
) -> Option<f64> {
    let logs: Vec<f64> = samples
        .iter()
        .filter(|s| keep(s) && s.elems_per_sec > 0.0)
        .map(|s| (s.elems_per_sec / model_rate(spec, params, s)).ln())
        .collect();
    if logs.is_empty() {
        None
    } else {
        Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
    }
}

const MAX_ROUNDS: u32 = 32;
const TOL: f64 = 1e-9;

/// Fit `elems_per_cycle_4b` and `widen_i8_penalty` to the measured
/// samples, starting from `start` (normally the shipped defaults).
///
/// Needs at least one non-`i8` sample; without `i8` samples the widening
/// penalty keeps its starting value.
pub fn fit_from_samples(
    spec: &CpuSpec,
    start: CpuModelParams,
    samples: &[MeasuredSample],
) -> Result<CpuFit> {
    if !samples.iter().any(|s| s.dtype != DType::I8) {
        return Err(GhrError::arg(
            "samples",
            "calibration needs at least one non-i8 measurement to pin elems_per_cycle_4b",
        ));
    }
    if let Some(bad) = samples
        .iter()
        .find(|s| !(s.elems_per_sec.is_finite() && s.elems_per_sec > 0.0))
    {
        return Err(GhrError::arg(
            "samples",
            format!(
                "non-positive measured rate for {}: {}",
                bad.dtype, bad.elems_per_sec
            ),
        ));
    }
    let start_err = mean_rel_err(spec, &start, samples);
    let mut params = start;
    let mut iterations = 0;
    let mut converged = false;
    while iterations < MAX_ROUNDS {
        iterations += 1;
        // The model is linear in elems_per_cycle_4b for every dtype, and
        // linear in 1/widen_i8_penalty for i8 — so each group's geometric
        // mean ratio is the exact multiplicative correction for its
        // parameter given the other one fixed.
        let mut moved = 0.0f64;
        if let Some(r) = geo_mean_ratio(spec, &params, samples, |s| s.dtype != DType::I8) {
            params.elems_per_cycle_4b *= r;
            moved = moved.max((r - 1.0).abs());
        }
        if let Some(r) = geo_mean_ratio(spec, &params, samples, |s| s.dtype == DType::I8) {
            // Rate scales with 1/penalty: a model that is too slow
            // (ratio > 1) means the penalty is too large.
            params.widen_i8_penalty /= r;
            moved = moved.max((r - 1.0).abs());
        }
        if moved < TOL {
            converged = true;
            break;
        }
    }
    let err = mean_rel_err(spec, &params, samples);
    // Residual table: geometric-mean measurement per dtype vs the model.
    let mut residuals = Vec::new();
    for dtype in [DType::I32, DType::I8, DType::F32, DType::F64] {
        let group: Vec<&MeasuredSample> = samples.iter().filter(|s| s.dtype == dtype).collect();
        if group.is_empty() {
            continue;
        }
        let measured = (group
            .iter()
            .map(|s| (s.elems_per_sec / s.threads.max(1) as f64).ln())
            .sum::<f64>()
            / group.len() as f64)
            .exp();
        let modeled = CpuModel::with_params(spec.clone(), params).compute_rate(dtype, 1);
        residuals.push(CaseResidual {
            dtype,
            measured_eps: measured,
            modeled_eps: modeled,
        });
    }
    Ok(CpuFit {
        params,
        start,
        start_err,
        err,
        iterations,
        converged,
        residuals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghr_machine::CpuSpec;

    fn spec() -> CpuSpec {
        CpuSpec::grace()
    }

    /// Samples generated *from* the model with known parameters must be
    /// recovered exactly (round-trip identifiability).
    #[test]
    fn fit_recovers_known_parameters() {
        let truth = CpuModelParams {
            elems_per_cycle_4b: 11.5,
            widen_i8_penalty: 9.0,
            ..CpuModelParams::default()
        };
        let spec = spec();
        let model = CpuModel::with_params(spec.clone(), truth);
        let samples: Vec<MeasuredSample> = [DType::I32, DType::I8, DType::F32, DType::F64]
            .into_iter()
            .map(|dtype| MeasuredSample {
                dtype,
                v: 32,
                threads: 1,
                elems_per_sec: model.compute_rate(dtype, 1),
            })
            .collect();
        let fit = fit_from_samples(&spec, CpuModelParams::default(), &samples).unwrap();
        assert!(fit.converged, "{fit:?}");
        assert!(
            (fit.params.elems_per_cycle_4b - 11.5).abs() < 1e-6,
            "{fit:?}"
        );
        assert!((fit.params.widen_i8_penalty - 9.0).abs() < 1e-5, "{fit:?}");
        assert!(fit.err < 1e-9, "{fit:?}");
        assert!(fit.err <= fit.start_err);
        assert_eq!(fit.residuals.len(), 4);
        for r in &fit.residuals {
            assert!(r.rel_err() < 1e-9, "{r:?}");
        }
    }

    /// Noisy measurements still converge, and the fitted error is no worse
    /// than the starting error.
    #[test]
    fn fit_improves_on_noisy_samples() {
        let spec = spec();
        let model = CpuModel::new(spec.clone());
        let noise = [1.21, 0.84, 1.1, 0.95];
        let samples: Vec<MeasuredSample> = [DType::I32, DType::I8, DType::F32, DType::F64]
            .into_iter()
            .zip(noise)
            .map(|(dtype, f)| MeasuredSample {
                dtype,
                v: 32,
                threads: 1,
                elems_per_sec: model.compute_rate(dtype, 1) * f * 0.5,
            })
            .collect();
        let fit = fit_from_samples(&spec, CpuModelParams::default(), &samples).unwrap();
        assert!(fit.converged);
        assert!(fit.err <= fit.start_err + 1e-12, "{fit:?}");
        assert!(fit.params.elems_per_cycle_4b > 0.0);
        assert!(fit.params.widen_i8_penalty > 0.0);
    }

    #[test]
    fn fit_without_i8_keeps_penalty() {
        let spec = spec();
        let samples = [MeasuredSample {
            dtype: DType::F32,
            v: 8,
            threads: 1,
            elems_per_sec: 1e10,
        }];
        let fit = fit_from_samples(&spec, CpuModelParams::default(), &samples).unwrap();
        assert_eq!(
            fit.params.widen_i8_penalty,
            CpuModelParams::default().widen_i8_penalty
        );
        assert!(fit.converged);
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        let spec = spec();
        // Only i8: the 4-byte anchor is missing.
        let only_i8 = [MeasuredSample {
            dtype: DType::I8,
            v: 8,
            threads: 1,
            elems_per_sec: 1e9,
        }];
        assert!(fit_from_samples(&spec, CpuModelParams::default(), &only_i8).is_err());
        // Zero rate.
        let zero = [MeasuredSample {
            dtype: DType::F32,
            v: 8,
            threads: 1,
            elems_per_sec: 0.0,
        }];
        assert!(fit_from_samples(&spec, CpuModelParams::default(), &zero).is_err());
        // Empty.
        assert!(fit_from_samples(&spec, CpuModelParams::default(), &[]).is_err());
    }

    /// Multi-thread samples are normalized by the model's thread scaling,
    /// so mixing thread counts does not skew the fit.
    #[test]
    fn fit_handles_mixed_thread_counts() {
        let truth = CpuModelParams {
            elems_per_cycle_4b: 8.0,
            ..CpuModelParams::default()
        };
        let spec = spec();
        let model = CpuModel::with_params(spec.clone(), truth);
        let samples: Vec<MeasuredSample> = [1u32, 4, 16]
            .into_iter()
            .map(|threads| MeasuredSample {
                dtype: DType::F32,
                v: 32,
                threads,
                elems_per_sec: model.compute_rate(DType::F32, threads),
            })
            .collect();
        let fit = fit_from_samples(&spec, CpuModelParams::default(), &samples).unwrap();
        assert!(
            (fit.params.elems_per_cycle_4b - 8.0).abs() < 1e-6,
            "{fit:?}"
        );
    }
}
