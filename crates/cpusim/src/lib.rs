//! # ghr-cpusim
//!
//! Analytic timing model for the CPU leg of the reduction: an OpenMP
//! `parallel for simd reduction(+)` loop on the Grace CPU.
//!
//! A streaming sum is almost always memory-bound on a server CPU, so the
//! model is a roofline:
//!
//! ```text
//! t = max( bytes / min(stream_bw(threads), supply_bw),   # memory
//!          elements / compute_rate(dtype, threads) )     # SIMD compute
//!     + fork_join_overhead
//! ```
//!
//! `supply_bw` lets the co-execution harness cap the memory side by
//! whatever actually feeds the cores: local LPDDR5X, remote HBM over
//! NVLink-C2C (the A1 story), or an LPDDR5X share when the GPU is
//! simultaneously streaming the same DRAM (co-run contention).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calibrate;

pub use calibrate::{fit_from_samples, CaseResidual, CpuFit, MeasuredSample};

use ghr_machine::CpuSpec;
use ghr_types::{Bandwidth, Bytes, DType, SimTime};

/// Fitted parameters of the CPU loop model (everything that is not a
/// datasheet number).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuModelParams {
    /// Cost of entering/leaving the OpenMP parallel region (fork + implicit
    /// barrier + combining per-thread partials).
    pub fork_join_overhead: SimTime,
    /// SIMD elements of a 4-byte type reduced per core per cycle
    /// (vector-add throughput, not load throughput).
    pub elems_per_cycle_4b: f64,
    /// Throughput penalty for widening `i8` elements to `i64` accumulators
    /// (unpack + widen chains): multiplier on the per-element compute cost.
    pub widen_i8_penalty: f64,
}

impl Default for CpuModelParams {
    fn default() -> Self {
        CpuModelParams {
            fork_join_overhead: SimTime::micros(8.0),
            // Neoverse V2: 4x128-bit SIMD pipes -> 16 lanes of 4-byte adds
            // per cycle in the ideal case.
            elems_per_cycle_4b: 16.0,
            // i8 -> i64 widening needs an 8x lane expansion plus extend
            // chains; ~16x over a plain 4-byte vector add.
            widen_i8_penalty: 16.0,
        }
    }
}

/// Timing breakdown of one modelled CPU reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuReduceBreakdown {
    /// Time the memory system needs to deliver the elements.
    pub memory: SimTime,
    /// Time the SIMD pipes need to consume the elements.
    pub compute: SimTime,
    /// Parallel-region overhead.
    pub overhead: SimTime,
    /// Total modelled time (`max(memory, compute) + overhead`).
    pub total: SimTime,
}

/// The CPU timing model.
#[derive(Debug, Clone)]
pub struct CpuModel {
    spec: CpuSpec,
    params: CpuModelParams,
}

impl CpuModel {
    /// Build a model from a CPU description with default fitted parameters.
    pub fn new(spec: CpuSpec) -> Self {
        CpuModel {
            spec,
            params: CpuModelParams::default(),
        }
    }

    /// Build with explicit parameters.
    pub fn with_params(spec: CpuSpec, params: CpuModelParams) -> Self {
        CpuModel { spec, params }
    }

    /// The underlying hardware description.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// The fitted parameters.
    pub fn params(&self) -> &CpuModelParams {
        &self.params
    }

    /// Per-second element throughput of the SIMD pipes for `dtype` with
    /// `threads` active cores.
    pub fn compute_rate(&self, dtype: DType, threads: u32) -> f64 {
        let threads = threads.clamp(1, self.spec.cores) as f64;
        // Lane count scales inversely with element width relative to 4B.
        let width_scale = dtype.simd_width_scale();
        let penalty = if dtype.widens_on_accumulate() {
            self.params.widen_i8_penalty
        } else {
            1.0
        };
        self.params.elems_per_cycle_4b * width_scale / penalty * self.spec.clock.hz() * threads
    }

    /// Model a reduction of `m` elements of `dtype` using `threads` cores,
    /// with the memory side limited to `supply_bw` (pass
    /// `self.spec().mem_stream_bw` — or use [`CpuModel::reduce_local`] —
    /// for purely local data).
    pub fn reduce(
        &self,
        m: u64,
        dtype: DType,
        threads: u32,
        supply_bw: Bandwidth,
    ) -> CpuReduceBreakdown {
        let threads = threads.clamp(1, self.spec.cores);
        let bytes = Bytes(m * dtype.size_bytes());
        let mem_bw = self.spec.stream_bw(threads).min(supply_bw);
        let memory = mem_bw.time_for(bytes);
        let compute = if m == 0 {
            SimTime::ZERO
        } else {
            SimTime::secs(m as f64 / self.compute_rate(dtype, threads))
        };
        let overhead = self.params.fork_join_overhead;
        let total = memory.max(compute) + overhead;
        CpuReduceBreakdown {
            memory,
            compute,
            overhead,
            total,
        }
    }

    /// Model a reduction over CPU-local (LPDDR5X-resident) data.
    pub fn reduce_local(&self, m: u64, dtype: DType, threads: u32) -> CpuReduceBreakdown {
        self.reduce(m, dtype, threads, self.spec.mem_stream_bw)
    }

    /// Effective bandwidth (paper metric: bytes of input per second of
    /// modelled time) of a local reduction.
    pub fn reduce_bandwidth(&self, m: u64, dtype: DType, threads: u32) -> Bandwidth {
        let b = self.reduce_local(m, dtype, threads);
        b.total.bandwidth_for(Bytes(m * dtype.size_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghr_machine::CpuSpec;

    fn model() -> CpuModel {
        CpuModel::new(CpuSpec::grace())
    }

    const M: u64 = 1_048_576_000;

    #[test]
    fn large_local_reduction_is_memory_bound_at_stream_bw() {
        let m = model();
        for dtype in [DType::I32, DType::F32, DType::F64] {
            let bw = m.reduce_bandwidth(M, dtype, 72);
            // Within ~1% of the 450 GB/s STREAM rate (overhead is tiny).
            assert!((bw.as_gbps() - 450.0).abs() < 5.0, "{dtype}: {bw}");
        }
    }

    #[test]
    fn i8_pays_widening_but_stays_memory_bound_at_full_cores() {
        let m = model();
        let b = m.reduce_local(4 * M, DType::I8, 72);
        assert!(b.memory >= b.compute, "{b:?}");
    }

    #[test]
    fn i8_becomes_compute_bound_on_few_cores() {
        let m = model();
        // One core: 12 GB/s of memory demand for i8 is 12G elem/s, while the
        // widening chain sustains 16/4 * 3.2G = 12.8G elem/s — nearly tied;
        // verify the compute term is within 2x of the memory term (i.e. the
        // widening penalty is visible at low core counts).
        let b = m.reduce_local(4 * M, DType::I8, 1);
        assert!(b.compute.as_secs() > 0.5 * b.memory.as_secs(), "{b:?}");
    }

    #[test]
    fn time_scales_linearly_with_elements_when_memory_bound() {
        let m = model();
        let t1 = m.reduce_local(M, DType::F32, 72).total;
        let t2 = m.reduce_local(2 * M, DType::F32, 72).total;
        let ratio = t2.as_secs() / t1.as_secs();
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn more_threads_never_slower() {
        let m = model();
        let mut last = f64::INFINITY;
        for threads in [1, 2, 4, 8, 16, 32, 72] {
            let t = m.reduce_local(M, DType::I32, threads).total.as_secs();
            assert!(t <= last + 1e-12, "threads={threads}");
            last = t;
        }
    }

    #[test]
    fn remote_supply_caps_bandwidth() {
        let m = model();
        let remote = Bandwidth::gbps(140.0);
        let b = m.reduce(M, DType::F32, 72, remote);
        let bw = b.total.bandwidth_for(Bytes(M * 4));
        assert!(bw.as_gbps() <= 140.0 + 1e-6);
        assert!(bw.as_gbps() > 130.0);
    }

    #[test]
    fn zero_elements_costs_only_overhead() {
        let m = model();
        let b = m.reduce_local(0, DType::F64, 72);
        assert_eq!(b.total, m.params().fork_join_overhead);
    }

    #[test]
    fn thread_count_clamps_to_core_count() {
        let m = model();
        let a = m.reduce_local(M, DType::I32, 72).total;
        let b = m.reduce_local(M, DType::I32, 1000).total;
        assert_eq!(a, b);
    }

    #[test]
    fn breakdown_total_is_consistent() {
        let m = model();
        let b = m.reduce_local(M, DType::F64, 16);
        assert_eq!(b.total, b.memory.max(b.compute) + b.overhead);
        assert!(b.total.is_valid_span());
    }
}
