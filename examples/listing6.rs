//! Replay the paper's Listing 6 measurement protocol end-to-end: map the
//! input once (excluded from timing), then 200 repetitions of
//! `{ sum = 0; target update to(sum); kernel; target update from(sum) }`.
//!
//! ```text
//! cargo run --release --example listing6
//! ```

use grace_hopper_reduction::prelude::*;
use grace_hopper_reduction::types::DType;

fn main() {
    let rt = OmpRuntime::new(MachineConfig::gh200());
    println!("Listing 6 protocol at the paper's scale (N = 200):\n");
    println!(
        "{:<6} {:>14} {:>16} {:>12}",
        "case", "map-in (ms)", "timed section", "GB/s"
    );
    for case in Case::ALL {
        let spec = ReductionSpec::optimized_paper(case);
        let (map_in, timed, gbps) = rt
            .listing6_protocol(&spec.region(), case.m_paper(), case.elem(), case.acc(), 200)
            .expect("protocol runs");
        println!(
            "{:<6} {:>14.2} {:>16} {:>12.0}",
            case.label(),
            map_in.as_millis(),
            format!("{timed}"),
            gbps
        );
    }
    println!(
        "\nThe host-to-device map is excluded from the timed section, exactly\n\
         like the paper; the per-repetition scalar updates ride on the\n\
         kernel-launch overhead."
    );
    // Show the separate- vs unified-memory contrast on the map cost.
    let unified = OmpRuntime::unified(MachineConfig::gh200());
    let (map_in, _, _) = unified
        .listing6_protocol(
            &ReductionSpec::optimized_paper(Case::C1).region(),
            Case::C1.m_paper(),
            DType::I32,
            DType::I32,
            1,
        )
        .expect("protocol runs");
    println!("\nin unified-memory mode the same map costs: {map_in}");
}
