//! What-if studies on a modified machine: the hardware description is
//! plain data, so hypothetical nodes are one struct update away.
//!
//! ```text
//! cargo run --release --example custom_machine
//! ```

use grace_hopper_reduction::prelude::*;

fn table1_line(rt: &OmpRuntime, label: &str) {
    let t = ghr_core::table1::table1(rt).expect("table1");
    let row = &t.rows[0]; // C1
    println!(
        "{label:<34} C1 base {:>6.0} GB/s | opt {:>6.0} GB/s | speedup {:>6.3}",
        row.base_gbps, row.opt_gbps, row.speedup
    );
}

fn main() {
    // The paper's GH200.
    let gh200 = MachineConfig::gh200();
    table1_line(&OmpRuntime::new(gh200.clone()), "GH200 (paper testbed)");

    // A hypothetical node with twice the HBM bandwidth: the optimized
    // kernel scales with the roof, the baseline stays team-pipeline-bound.
    let mut fat_hbm = gh200.clone();
    fat_hbm.gpu.hbm_peak_bw = Bandwidth::gbps(2.0 * 4022.7);
    table1_line(&OmpRuntime::new(fat_hbm), "2x HBM bandwidth");

    // Half the SMs: the baseline's per-team pipeline halves in throughput.
    let mut half_sms = gh200.clone();
    half_sms.gpu.sm_count = 66;
    table1_line(&OmpRuntime::new(half_sms), "66 SMs");

    // A future runtime with a better heuristic would look like the
    // optimized row; a slower interconnect mainly hurts co-execution.
    let mut slow_link = gh200;
    slow_link.link.cpu_reads_gpu_mem = Bandwidth::gbps(100.0);
    let machine = slow_link.clone();
    let case = Case::C1;
    let spec = ReductionSpec::optimized_paper(case);
    let s = run_corun(
        &machine,
        &CorunConfig::paper(case, spec.kind, AllocSite::A1),
    )
    .expect("co-run");
    println!(
        "slow C2C (100 GB/s CPU->HBM)        A1 co-run peak speedup over GPU-only: {:.3}",
        s.peak_speedup_over_gpu_only()
    );

    // And the full contrast: a conventional PCIe node. The paper's UM
    // co-execution premise depends on the coherent interconnect — on
    // PCIe, A1's CPU leg reads mapped device memory at BAR speeds and the
    // co-run story collapses.
    let pcie = MachineConfig::x86_pcie();
    table1_line(&OmpRuntime::new(pcie.clone()), "x86 + H100 PCIe");
    let s = run_corun(&pcie, &CorunConfig::paper(case, spec.kind, AllocSite::A1)).expect("co-run");
    println!(
        "x86 + H100 PCIe                     A1 CPU-only endpoint: {:.0} GB/s (GH200: 329)",
        s.cpu_only_gbps()
    );
}
