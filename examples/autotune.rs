//! Autotune the reduction for all four cases and compare against the
//! paper's chosen configurations.
//!
//! ```text
//! cargo run --release --example autotune
//! ```

use grace_hopper_reduction::prelude::*;

fn main() {
    let rt = OmpRuntime::new(MachineConfig::gh200());
    println!("autotuning over teams x V (thread_limit 256)...\n");
    println!(
        "{:<5} {:>12} {:>4} {:>10}   paper choice",
        "case", "teams axis", "v", "GB/s"
    );
    for case in Case::ALL {
        let tuned = autotune(&rt, case).expect("sweep runs");
        println!(
            "{:<5} {:>12} {:>4} {:>10.0}   teams=65536, v={}",
            case.label(),
            tuned.teams_axis,
            tuned.v,
            tuned.gbps,
            case.v_optimized()
        );
        assert_eq!(
            tuned.v,
            case.v_optimized(),
            "tuned V diverged from the paper"
        );
    }
    println!("\nall tuned V values match the paper's Section IV choices.");
}
