//! Regenerate one panel of Fig. 1: bandwidth vs (teams, V) for a case.
//!
//! ```text
//! cargo run --release --example gpu_sweep [c1|c2|c3|c4]
//! ```

use grace_hopper_reduction::prelude::*;

fn main() {
    let case = match std::env::args().nth(1).as_deref() {
        None | Some("c1") => Case::C1,
        Some("c2") => Case::C2,
        Some("c3") => Case::C3,
        Some("c4") => Case::C4,
        Some(other) => {
            eprintln!("unknown case {other:?}; use c1..c4");
            std::process::exit(2);
        }
    };
    let rt = OmpRuntime::new(MachineConfig::gh200());
    let result = GpuSweep::paper(case).run(&rt).expect("sweep runs");

    println!(
        "Fig. 1 panel for {case} ({}), GB/s, thread_limit=256, M={}:\n",
        case.signature(),
        result.sweep.m
    );
    print!("{}", result.to_table().to_markdown());

    let best = result.best();
    println!(
        "\nbest: {:.0} GB/s at teams={} v={} (paper: v={} saturating by 65536 teams)",
        best.gbps,
        best.teams_axis,
        best.v,
        case.v_optimized()
    );
    for v in [1u32, case.v_optimized()] {
        if let Some(knee) = result.saturation_teams(v, 0.9) {
            println!("v{v} reaches 90% of its plateau at {knee} teams");
        }
    }
}
