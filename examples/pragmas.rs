//! Use the paper's pragmas verbatim: parse Listing 2/5/7 strings into
//! typed regions and execute them.
//!
//! ```text
//! cargo run --release --example pragmas
//! ```

use ghr_omp::parse::{parse_host_pragma, parse_target_pragma};
use grace_hopper_reduction::prelude::*;

fn main() {
    let rt = OmpRuntime::new(MachineConfig::gh200());
    let data: Vec<i32> = (0..2_000_000).map(|i| i % 7).collect();
    let expect: i32 = data.iter().sum();

    // Listing 2 — the baseline.
    let listing2 =
        parse_target_pragma("#pragma omp target teams distribute parallel for reduction(+:sum)")
            .expect("listing 2 parses");
    let out = rt.target_reduce_device(&data, &listing2).unwrap();
    assert_eq!(out.value, expect);
    println!("Listing 2: {}", listing2.pragma());
    println!(
        "  -> {} teams x {} threads, {}\n",
        out.launch.num_teams,
        out.launch.threads_per_team,
        out.time()
    );

    // Listing 5 — the optimized kernel. The V-unrolling is source-level,
    // so it is set on the parsed region rather than in the pragma.
    let listing5 = parse_target_pragma(
        "#pragma omp target teams distribute parallel for \\\n\
         num_teams(16384) thread_limit(256) reduction(+:sum)",
    )
    .expect("listing 5 parses")
    .with_v(4);
    let out = rt.target_reduce_device(&data, &listing5).unwrap();
    assert_eq!(out.value, expect);
    println!("Listing 5: {}", listing5.pragma());
    println!(
        "  -> {} teams x {} threads, {}\n",
        out.launch.num_teams,
        out.launch.threads_per_team,
        out.time()
    );

    // Listing 7 — the co-execution pair.
    let device = parse_target_pragma(
        "#pragma omp target teams distribute parallel for nowait \
         map(to: inD[0:LenD]) reduction(+:sumD)",
    )
    .expect("device side parses");
    let host =
        parse_host_pragma("#pragma omp parallel for simd reduction(+:sumH)").expect("host side");
    let (front, back) = data.split_at(data.len() / 3);
    let sum_h = rt.host_reduce_region(front, &host).unwrap().value;
    let sum_d = rt.target_reduce_device(back, &device).unwrap().value;
    assert_eq!(sum_h + sum_d, expect);
    println!("Listing 7 pair:");
    println!("  host  : {}", host.pragma());
    println!("  device: {}", device.pragma());
    println!("  sumH + sumD = {} (verified)", sum_h + sum_d);
}
