//! Quickstart: run the paper's baseline and optimized reductions on real
//! data over the simulated GH200 and print what the paper's Table 1 prints.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use grace_hopper_reduction::prelude::*;

fn main() {
    let machine = MachineConfig::gh200();
    println!("machine : {}", machine.gpu.name);
    println!("peak BW : {}\n", machine.gpu.hbm_peak_bw);
    let rt = OmpRuntime::new(machine);

    // --- functional: really compute a sum with device semantics --------
    let m: u64 = 4_000_000;
    let data: Vec<i32> = (0..m).map(|i| (i % 7) as i32).collect();
    let expect: i32 = data.iter().sum();

    let baseline = rt
        .target_reduce_device(&data, &TargetRegion::baseline())
        .expect("baseline runs");
    let optimized = rt
        .target_reduce_device(&data, &TargetRegion::optimized(65536, 4))
        .expect("optimized runs");

    assert_eq!(baseline.value, expect);
    assert_eq!(optimized.value, expect);
    println!("sum of {m} elements = {} (verified)", optimized.value);
    println!(
        "baseline : {} teams x {} threads, {}",
        baseline.launch.num_teams,
        baseline.launch.threads_per_team,
        baseline.time(),
    );
    println!(
        "optimized: {} teams x {} threads, {}\n",
        optimized.launch.num_teams,
        optimized.launch.threads_per_team,
        optimized.time(),
    );

    // --- timing at the paper's full 4 GB scale --------------------------
    println!("Table 1 at the paper's scale (1 048 576 000+ elements):\n");
    let t1 = table1(&rt).expect("table 1");
    print!("{}", t1.to_table().to_markdown());
    println!(
        "\nmax deviation from the paper's Table 1: {:.2}%",
        t1.max_relative_error() * 100.0
    );
}
