//! CPU-side scaling: how the Grace CPU's reduction bandwidth grows with
//! core count and saturates at the LPDDR5X streaming limit — the curve
//! behind the paper's CPU-only endpoints.
//!
//! ```text
//! cargo run --release --example cpu_scaling
//! ```

use ghr_core::plot::AsciiChart;
use ghr_cpusim::CpuModel;
use ghr_machine::CpuSpec;
use ghr_types::DType;

fn main() {
    let model = CpuModel::new(CpuSpec::grace());
    let m = 1_048_576_000u64;
    println!("Grace CPU reduction bandwidth vs active cores (C1, i32, 1G elements)\n");
    println!("{:>6} {:>10} {:>12}", "cores", "GB/s", "bound by");
    let mut points = Vec::new();
    for cores in [1u32, 2, 4, 8, 16, 24, 32, 48, 64, 72] {
        let b = model.reduce_local(m, DType::I32, cores);
        let gbps = b.total.bandwidth_for(ghr_types::Bytes(m * 4)).as_gbps();
        let bound = if b.compute > b.memory {
            "compute"
        } else {
            "memory"
        };
        println!("{cores:>6} {gbps:>10.1} {bound:>12}");
        points.push((cores as f64, gbps));
    }
    let chart = AsciiChart::new(60, 14)
        .labels("cores", "GB/s")
        .series('*', points);
    println!("\n{}", chart.render());
    println!(
        "~38 cores saturate the 450 GB/s LPDDR5X stream rate — running all\n\
         72 cores buys nothing for this kernel, which is why co-execution\n\
         gains level off once the CPU part exceeds its memory share."
    );
}
