//! Floating-point accuracy of the different summation orders — why the
//! paper's float cases (C3/C4) need a tolerance when "the GPU results are
//! verified using the CPU results".
//!
//! ```text
//! cargo run --release --example accuracy
//! ```

use ghr_core::accuracy::accuracy_study;

fn main() {
    let counts: Vec<u64> = (14..=24).step_by(2).map(|i| 1u64 << i).collect();
    let study = accuracy_study(&counts).expect("study runs");
    println!("f32 summation error vs an f64 Kahan reference");
    println!("(units of eps x |sum|; positive pseudo-random data)\n");
    print!("{}", study.to_table().to_markdown());
    println!(
        "\nThe serial loop's error random-walks upward with M; the device's\n\
         tree order (per-thread partials -> intra-team tree -> team combine)\n\
         and pairwise summation stay flat. The offloaded reduction is not\n\
         just faster than the serial loop — it is usually *more* accurate."
    );
}
