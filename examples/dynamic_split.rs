//! Compare co-scheduling policies (static, oracle, adaptive, dynamic
//! chunk queue) on the simulated GH200 — the extension experiment beyond
//! the paper's static `p` sweep.
//!
//! ```text
//! cargo run --release --example dynamic_split
//! ```

use ghr_core::sched::{compare_policies, comparison_table};
use ghr_machine::MachineConfig;

fn main() {
    let machine = MachineConfig::gh200();
    let case = ghr_core::Case::C1;
    println!(
        "co-scheduling policies, {case}, optimized kernel, UM mode, 200 reps\n\
         (array initialized on the CPU; ~40 MB so chunk policies stay visible)\n"
    );
    let outcomes = compare_policies(&machine, case, 10_000_000, 200).expect("policies run");
    print!("{}", comparison_table(&outcomes).to_markdown());
    println!(
        "\nTakeaways on a coherent-UM node with sticky pages:\n\
         - adaptive probe-then-commit converges near the oracle split;\n\
         - the dynamic chunk queue balances perfectly per-rep but fragments\n\
           page ownership, so it loses badly once migration costs count;\n\
         - oracle == best static, as the paper's Fig. 2 sweep implies."
    );
}
