//! Co-execute the reduction on the CPU and GPU in unified-memory mode
//! (the paper's Section IV) and print the Fig. 2/4-style series.
//!
//! ```text
//! cargo run --release --example co_execution [a1|a2]
//! ```

use grace_hopper_reduction::prelude::*;

fn main() {
    let alloc = match std::env::args().nth(1).as_deref() {
        None | Some("a1") => AllocSite::A1,
        Some("a2") => AllocSite::A2,
        Some(other) => {
            eprintln!("unknown allocation site {other:?}; use a1 or a2");
            std::process::exit(2);
        }
    };
    let machine = MachineConfig::gh200();
    let case = Case::C1;

    println!("co-execution of {case}, allocation at {alloc}, UM mode\n");
    let base = run_corun(
        &machine,
        &CorunConfig::paper(case, KernelKind::Baseline, alloc),
    )
    .expect("baseline co-run");
    let spec = ReductionSpec::optimized_paper(case);
    let opt =
        run_corun(&machine, &CorunConfig::paper(case, spec.kind, alloc)).expect("optimized co-run");

    println!("baseline kernel:");
    print!("{}", base.to_table().to_markdown());
    println!("\noptimized kernel:");
    print!("{}", opt.to_table().to_markdown());

    println!("\nper-p speedup of optimized over baseline (Fig. 3/5 style):");
    for (p, s) in opt.speedup_vs(&base) {
        println!("  p={p:.1}: {s:.3}x");
    }
    println!(
        "\npeak speedup over GPU-only: baseline {:.3}x, optimized {:.3}x",
        base.peak_speedup_over_gpu_only(),
        opt.peak_speedup_over_gpu_only()
    );
    println!(
        "CPU-only endpoints: baseline {:.0} GB/s, optimized {:.0} GB/s",
        base.cpu_only_gbps(),
        opt.cpu_only_gbps()
    );
}
