/root/repo/target/debug/deps/model_regression-70da4b6c78b9920f.d: tests/model_regression.rs

/root/repo/target/debug/deps/model_regression-70da4b6c78b9920f: tests/model_regression.rs

tests/model_regression.rs:
