/root/repo/target/debug/deps/engine_determinism-d05e851be8a90c22.d: crates/core/tests/engine_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libengine_determinism-d05e851be8a90c22.rmeta: crates/core/tests/engine_determinism.rs Cargo.toml

crates/core/tests/engine_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
