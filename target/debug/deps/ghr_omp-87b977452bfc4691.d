/root/repo/target/debug/deps/ghr_omp-87b977452bfc4691.d: crates/omp/src/lib.rs crates/omp/src/clause.rs crates/omp/src/data_env.rs crates/omp/src/env.rs crates/omp/src/heuristics.rs crates/omp/src/host_region.rs crates/omp/src/outcome.rs crates/omp/src/parse.rs crates/omp/src/region.rs crates/omp/src/runtime.rs

/root/repo/target/debug/deps/libghr_omp-87b977452bfc4691.rlib: crates/omp/src/lib.rs crates/omp/src/clause.rs crates/omp/src/data_env.rs crates/omp/src/env.rs crates/omp/src/heuristics.rs crates/omp/src/host_region.rs crates/omp/src/outcome.rs crates/omp/src/parse.rs crates/omp/src/region.rs crates/omp/src/runtime.rs

/root/repo/target/debug/deps/libghr_omp-87b977452bfc4691.rmeta: crates/omp/src/lib.rs crates/omp/src/clause.rs crates/omp/src/data_env.rs crates/omp/src/env.rs crates/omp/src/heuristics.rs crates/omp/src/host_region.rs crates/omp/src/outcome.rs crates/omp/src/parse.rs crates/omp/src/region.rs crates/omp/src/runtime.rs

crates/omp/src/lib.rs:
crates/omp/src/clause.rs:
crates/omp/src/data_env.rs:
crates/omp/src/env.rs:
crates/omp/src/heuristics.rs:
crates/omp/src/host_region.rs:
crates/omp/src/outcome.rs:
crates/omp/src/parse.rs:
crates/omp/src/region.rs:
crates/omp/src/runtime.rs:
