/root/repo/target/debug/deps/proptest_um-9438436624bad903.d: crates/mem/tests/proptest_um.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_um-9438436624bad903.rmeta: crates/mem/tests/proptest_um.rs Cargo.toml

crates/mem/tests/proptest_um.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
