/root/repo/target/debug/deps/end_to_end-7583b416476eaa62.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7583b416476eaa62: tests/end_to_end.rs

tests/end_to_end.rs:
