/root/repo/target/debug/deps/model_properties-f165312ec99ea109.d: crates/gpusim/tests/model_properties.rs

/root/repo/target/debug/deps/model_properties-f165312ec99ea109: crates/gpusim/tests/model_properties.rs

crates/gpusim/tests/model_properties.rs:
