/root/repo/target/debug/deps/ghr_machine-ae9b3d1d3a63f891.d: crates/machine/src/lib.rs crates/machine/src/cpu.rs crates/machine/src/gpu.rs crates/machine/src/link.rs crates/machine/src/machine.rs

/root/repo/target/debug/deps/ghr_machine-ae9b3d1d3a63f891: crates/machine/src/lib.rs crates/machine/src/cpu.rs crates/machine/src/gpu.rs crates/machine/src/link.rs crates/machine/src/machine.rs

crates/machine/src/lib.rs:
crates/machine/src/cpu.rs:
crates/machine/src/gpu.rs:
crates/machine/src/link.rs:
crates/machine/src/machine.rs:
