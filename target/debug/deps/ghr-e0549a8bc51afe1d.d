/root/repo/target/debug/deps/ghr-e0549a8bc51afe1d.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ghr-e0549a8bc51afe1d: crates/cli/src/main.rs

crates/cli/src/main.rs:
