/root/repo/target/debug/deps/corun_integration-0613954a076ae930.d: tests/corun_integration.rs

/root/repo/target/debug/deps/corun_integration-0613954a076ae930: tests/corun_integration.rs

tests/corun_integration.rs:
