/root/repo/target/debug/deps/proptest_kernels-654f6557ea2bdfe5.d: crates/parallel/tests/proptest_kernels.rs

/root/repo/target/debug/deps/proptest_kernels-654f6557ea2bdfe5: crates/parallel/tests/proptest_kernels.rs

crates/parallel/tests/proptest_kernels.rs:
