/root/repo/target/debug/deps/ghr_parallel-31509ea8ef892106.d: crates/parallel/src/lib.rs crates/parallel/src/kernels.rs crates/parallel/src/pool.rs crates/parallel/src/reduce.rs crates/parallel/src/scope.rs

/root/repo/target/debug/deps/ghr_parallel-31509ea8ef892106: crates/parallel/src/lib.rs crates/parallel/src/kernels.rs crates/parallel/src/pool.rs crates/parallel/src/reduce.rs crates/parallel/src/scope.rs

crates/parallel/src/lib.rs:
crates/parallel/src/kernels.rs:
crates/parallel/src/pool.rs:
crates/parallel/src/reduce.rs:
crates/parallel/src/scope.rs:
