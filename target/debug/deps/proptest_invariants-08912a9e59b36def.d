/root/repo/target/debug/deps/proptest_invariants-08912a9e59b36def.d: tests/proptest_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_invariants-08912a9e59b36def.rmeta: tests/proptest_invariants.rs Cargo.toml

tests/proptest_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
