/root/repo/target/debug/deps/ghr_cpusim-0bfd233e666cc0d1.d: crates/cpusim/src/lib.rs

/root/repo/target/debug/deps/ghr_cpusim-0bfd233e666cc0d1: crates/cpusim/src/lib.rs

crates/cpusim/src/lib.rs:
