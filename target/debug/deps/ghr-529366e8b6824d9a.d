/root/repo/target/debug/deps/ghr-529366e8b6824d9a.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libghr-529366e8b6824d9a.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
