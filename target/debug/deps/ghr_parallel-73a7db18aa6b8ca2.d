/root/repo/target/debug/deps/ghr_parallel-73a7db18aa6b8ca2.d: crates/parallel/src/lib.rs crates/parallel/src/kernels.rs crates/parallel/src/pool.rs crates/parallel/src/reduce.rs crates/parallel/src/scope.rs Cargo.toml

/root/repo/target/debug/deps/libghr_parallel-73a7db18aa6b8ca2.rmeta: crates/parallel/src/lib.rs crates/parallel/src/kernels.rs crates/parallel/src/pool.rs crates/parallel/src/reduce.rs crates/parallel/src/scope.rs Cargo.toml

crates/parallel/src/lib.rs:
crates/parallel/src/kernels.rs:
crates/parallel/src/pool.rs:
crates/parallel/src/reduce.rs:
crates/parallel/src/scope.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
