/root/repo/target/debug/deps/ghr_cli-02efa2b47cdee254.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libghr_cli-02efa2b47cdee254.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libghr_cli-02efa2b47cdee254.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
