/root/repo/target/debug/deps/ghr_types-8e98c47bba499677.d: crates/types/src/lib.rs crates/types/src/device.rs crates/types/src/dtype.rs crates/types/src/error.rs crates/types/src/stats.rs crates/types/src/units.rs

/root/repo/target/debug/deps/libghr_types-8e98c47bba499677.rlib: crates/types/src/lib.rs crates/types/src/device.rs crates/types/src/dtype.rs crates/types/src/error.rs crates/types/src/stats.rs crates/types/src/units.rs

/root/repo/target/debug/deps/libghr_types-8e98c47bba499677.rmeta: crates/types/src/lib.rs crates/types/src/device.rs crates/types/src/dtype.rs crates/types/src/error.rs crates/types/src/stats.rs crates/types/src/units.rs

crates/types/src/lib.rs:
crates/types/src/device.rs:
crates/types/src/dtype.rs:
crates/types/src/error.rs:
crates/types/src/stats.rs:
crates/types/src/units.rs:
