/root/repo/target/debug/deps/model_regression-dc742840bbd600e0.d: tests/model_regression.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_regression-dc742840bbd600e0.rmeta: tests/model_regression.rs Cargo.toml

tests/model_regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
