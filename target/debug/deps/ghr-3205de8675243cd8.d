/root/repo/target/debug/deps/ghr-3205de8675243cd8.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libghr-3205de8675243cd8.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
