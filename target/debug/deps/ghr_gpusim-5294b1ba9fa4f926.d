/root/repo/target/debug/deps/ghr_gpusim-5294b1ba9fa4f926.d: crates/gpusim/src/lib.rs crates/gpusim/src/calibrate.rs crates/gpusim/src/exec.rs crates/gpusim/src/launch.rs crates/gpusim/src/model.rs crates/gpusim/src/occupancy.rs crates/gpusim/src/params.rs Cargo.toml

/root/repo/target/debug/deps/libghr_gpusim-5294b1ba9fa4f926.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/calibrate.rs crates/gpusim/src/exec.rs crates/gpusim/src/launch.rs crates/gpusim/src/model.rs crates/gpusim/src/occupancy.rs crates/gpusim/src/params.rs Cargo.toml

crates/gpusim/src/lib.rs:
crates/gpusim/src/calibrate.rs:
crates/gpusim/src/exec.rs:
crates/gpusim/src/launch.rs:
crates/gpusim/src/model.rs:
crates/gpusim/src/occupancy.rs:
crates/gpusim/src/params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
