/root/repo/target/debug/deps/grace_hopper_reduction-2d99caa0893d490a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgrace_hopper_reduction-2d99caa0893d490a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
