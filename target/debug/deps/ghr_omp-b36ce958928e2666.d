/root/repo/target/debug/deps/ghr_omp-b36ce958928e2666.d: crates/omp/src/lib.rs crates/omp/src/clause.rs crates/omp/src/data_env.rs crates/omp/src/env.rs crates/omp/src/heuristics.rs crates/omp/src/host_region.rs crates/omp/src/outcome.rs crates/omp/src/parse.rs crates/omp/src/region.rs crates/omp/src/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libghr_omp-b36ce958928e2666.rmeta: crates/omp/src/lib.rs crates/omp/src/clause.rs crates/omp/src/data_env.rs crates/omp/src/env.rs crates/omp/src/heuristics.rs crates/omp/src/host_region.rs crates/omp/src/outcome.rs crates/omp/src/parse.rs crates/omp/src/region.rs crates/omp/src/runtime.rs Cargo.toml

crates/omp/src/lib.rs:
crates/omp/src/clause.rs:
crates/omp/src/data_env.rs:
crates/omp/src/env.rs:
crates/omp/src/heuristics.rs:
crates/omp/src/host_region.rs:
crates/omp/src/outcome.rs:
crates/omp/src/parse.rs:
crates/omp/src/region.rs:
crates/omp/src/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
