/root/repo/target/debug/deps/ghr-cd7f645447f9a817.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ghr-cd7f645447f9a817: crates/cli/src/main.rs

crates/cli/src/main.rs:
