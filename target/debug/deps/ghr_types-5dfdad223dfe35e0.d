/root/repo/target/debug/deps/ghr_types-5dfdad223dfe35e0.d: crates/types/src/lib.rs crates/types/src/device.rs crates/types/src/dtype.rs crates/types/src/error.rs crates/types/src/stats.rs crates/types/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libghr_types-5dfdad223dfe35e0.rmeta: crates/types/src/lib.rs crates/types/src/device.rs crates/types/src/dtype.rs crates/types/src/error.rs crates/types/src/stats.rs crates/types/src/units.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/device.rs:
crates/types/src/dtype.rs:
crates/types/src/error.rs:
crates/types/src/stats.rs:
crates/types/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
