/root/repo/target/debug/deps/proptest_kernels-82bb5a49637dec38.d: crates/parallel/tests/proptest_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_kernels-82bb5a49637dec38.rmeta: crates/parallel/tests/proptest_kernels.rs Cargo.toml

crates/parallel/tests/proptest_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
