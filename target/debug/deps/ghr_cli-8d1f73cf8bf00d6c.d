/root/repo/target/debug/deps/ghr_cli-8d1f73cf8bf00d6c.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libghr_cli-8d1f73cf8bf00d6c.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
