/root/repo/target/debug/deps/ghr_cli-94f5f218d284aa7a.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libghr_cli-94f5f218d284aa7a.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
