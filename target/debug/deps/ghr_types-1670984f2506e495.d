/root/repo/target/debug/deps/ghr_types-1670984f2506e495.d: crates/types/src/lib.rs crates/types/src/device.rs crates/types/src/dtype.rs crates/types/src/error.rs crates/types/src/stats.rs crates/types/src/units.rs

/root/repo/target/debug/deps/ghr_types-1670984f2506e495: crates/types/src/lib.rs crates/types/src/device.rs crates/types/src/dtype.rs crates/types/src/error.rs crates/types/src/stats.rs crates/types/src/units.rs

crates/types/src/lib.rs:
crates/types/src/device.rs:
crates/types/src/dtype.rs:
crates/types/src/error.rs:
crates/types/src/stats.rs:
crates/types/src/units.rs:
