/root/repo/target/debug/deps/corun_integration-808229e352301d9f.d: tests/corun_integration.rs Cargo.toml

/root/repo/target/debug/deps/libcorun_integration-808229e352301d9f.rmeta: tests/corun_integration.rs Cargo.toml

tests/corun_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
