/root/repo/target/debug/deps/ghr_parallel-01fd5069d653eb1b.d: crates/parallel/src/lib.rs crates/parallel/src/kernels.rs crates/parallel/src/pool.rs crates/parallel/src/reduce.rs crates/parallel/src/scope.rs Cargo.toml

/root/repo/target/debug/deps/libghr_parallel-01fd5069d653eb1b.rmeta: crates/parallel/src/lib.rs crates/parallel/src/kernels.rs crates/parallel/src/pool.rs crates/parallel/src/reduce.rs crates/parallel/src/scope.rs Cargo.toml

crates/parallel/src/lib.rs:
crates/parallel/src/kernels.rs:
crates/parallel/src/pool.rs:
crates/parallel/src/reduce.rs:
crates/parallel/src/scope.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
