/root/repo/target/debug/deps/proptest_um-195e15e6941fce6e.d: crates/mem/tests/proptest_um.rs

/root/repo/target/debug/deps/proptest_um-195e15e6941fce6e: crates/mem/tests/proptest_um.rs

crates/mem/tests/proptest_um.rs:
