/root/repo/target/debug/deps/extensions-be5b30219486e76f.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-be5b30219486e76f: tests/extensions.rs

tests/extensions.rs:
