/root/repo/target/debug/deps/ghr_cpusim-0d54ca891e4958ca.d: crates/cpusim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libghr_cpusim-0d54ca891e4958ca.rmeta: crates/cpusim/src/lib.rs Cargo.toml

crates/cpusim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
