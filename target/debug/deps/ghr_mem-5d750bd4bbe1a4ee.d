/root/repo/target/debug/deps/ghr_mem-5d750bd4bbe1a4ee.d: crates/mem/src/lib.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/traffic.rs crates/mem/src/um.rs

/root/repo/target/debug/deps/ghr_mem-5d750bd4bbe1a4ee: crates/mem/src/lib.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/traffic.rs crates/mem/src/um.rs

crates/mem/src/lib.rs:
crates/mem/src/page.rs:
crates/mem/src/region.rs:
crates/mem/src/traffic.rs:
crates/mem/src/um.rs:
