/root/repo/target/debug/deps/engine_determinism-aace16387150e1df.d: crates/core/tests/engine_determinism.rs

/root/repo/target/debug/deps/engine_determinism-aace16387150e1df: crates/core/tests/engine_determinism.rs

crates/core/tests/engine_determinism.rs:
