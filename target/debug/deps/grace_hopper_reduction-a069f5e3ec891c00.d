/root/repo/target/debug/deps/grace_hopper_reduction-a069f5e3ec891c00.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgrace_hopper_reduction-a069f5e3ec891c00.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
