/root/repo/target/debug/deps/ghr_core-093645afef7bec42.d: crates/core/src/lib.rs crates/core/src/accuracy.rs crates/core/src/autotune.rs crates/core/src/case.rs crates/core/src/corun.rs crates/core/src/engine.rs crates/core/src/explain.rs crates/core/src/plot.rs crates/core/src/pricing.rs crates/core/src/reduction.rs crates/core/src/report.rs crates/core/src/sched.rs crates/core/src/study.rs crates/core/src/sweep.rs crates/core/src/table1.rs crates/core/src/verify.rs crates/core/src/whatif.rs crates/core/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libghr_core-093645afef7bec42.rmeta: crates/core/src/lib.rs crates/core/src/accuracy.rs crates/core/src/autotune.rs crates/core/src/case.rs crates/core/src/corun.rs crates/core/src/engine.rs crates/core/src/explain.rs crates/core/src/plot.rs crates/core/src/pricing.rs crates/core/src/reduction.rs crates/core/src/report.rs crates/core/src/sched.rs crates/core/src/study.rs crates/core/src/sweep.rs crates/core/src/table1.rs crates/core/src/verify.rs crates/core/src/whatif.rs crates/core/src/workload.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/accuracy.rs:
crates/core/src/autotune.rs:
crates/core/src/case.rs:
crates/core/src/corun.rs:
crates/core/src/engine.rs:
crates/core/src/explain.rs:
crates/core/src/plot.rs:
crates/core/src/pricing.rs:
crates/core/src/reduction.rs:
crates/core/src/report.rs:
crates/core/src/sched.rs:
crates/core/src/study.rs:
crates/core/src/sweep.rs:
crates/core/src/table1.rs:
crates/core/src/verify.rs:
crates/core/src/whatif.rs:
crates/core/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
