/root/repo/target/debug/deps/ghr_mem-d9b4ed0d09a2a1f6.d: crates/mem/src/lib.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/traffic.rs crates/mem/src/um.rs

/root/repo/target/debug/deps/libghr_mem-d9b4ed0d09a2a1f6.rlib: crates/mem/src/lib.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/traffic.rs crates/mem/src/um.rs

/root/repo/target/debug/deps/libghr_mem-d9b4ed0d09a2a1f6.rmeta: crates/mem/src/lib.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/traffic.rs crates/mem/src/um.rs

crates/mem/src/lib.rs:
crates/mem/src/page.rs:
crates/mem/src/region.rs:
crates/mem/src/traffic.rs:
crates/mem/src/um.rs:
