/root/repo/target/debug/deps/ghr_gpusim-9ee997b0049eb2a1.d: crates/gpusim/src/lib.rs crates/gpusim/src/calibrate.rs crates/gpusim/src/exec.rs crates/gpusim/src/launch.rs crates/gpusim/src/model.rs crates/gpusim/src/occupancy.rs crates/gpusim/src/params.rs

/root/repo/target/debug/deps/libghr_gpusim-9ee997b0049eb2a1.rlib: crates/gpusim/src/lib.rs crates/gpusim/src/calibrate.rs crates/gpusim/src/exec.rs crates/gpusim/src/launch.rs crates/gpusim/src/model.rs crates/gpusim/src/occupancy.rs crates/gpusim/src/params.rs

/root/repo/target/debug/deps/libghr_gpusim-9ee997b0049eb2a1.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/calibrate.rs crates/gpusim/src/exec.rs crates/gpusim/src/launch.rs crates/gpusim/src/model.rs crates/gpusim/src/occupancy.rs crates/gpusim/src/params.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/calibrate.rs:
crates/gpusim/src/exec.rs:
crates/gpusim/src/launch.rs:
crates/gpusim/src/model.rs:
crates/gpusim/src/occupancy.rs:
crates/gpusim/src/params.rs:
