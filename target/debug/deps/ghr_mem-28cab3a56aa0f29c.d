/root/repo/target/debug/deps/ghr_mem-28cab3a56aa0f29c.d: crates/mem/src/lib.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/traffic.rs crates/mem/src/um.rs Cargo.toml

/root/repo/target/debug/deps/libghr_mem-28cab3a56aa0f29c.rmeta: crates/mem/src/lib.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/traffic.rs crates/mem/src/um.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/page.rs:
crates/mem/src/region.rs:
crates/mem/src/traffic.rs:
crates/mem/src/um.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
