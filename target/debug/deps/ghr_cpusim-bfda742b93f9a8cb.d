/root/repo/target/debug/deps/ghr_cpusim-bfda742b93f9a8cb.d: crates/cpusim/src/lib.rs

/root/repo/target/debug/deps/libghr_cpusim-bfda742b93f9a8cb.rlib: crates/cpusim/src/lib.rs

/root/repo/target/debug/deps/libghr_cpusim-bfda742b93f9a8cb.rmeta: crates/cpusim/src/lib.rs

crates/cpusim/src/lib.rs:
