/root/repo/target/debug/deps/ghr_gpusim-57487bdc6ee80a41.d: crates/gpusim/src/lib.rs crates/gpusim/src/calibrate.rs crates/gpusim/src/exec.rs crates/gpusim/src/launch.rs crates/gpusim/src/model.rs crates/gpusim/src/occupancy.rs crates/gpusim/src/params.rs

/root/repo/target/debug/deps/ghr_gpusim-57487bdc6ee80a41: crates/gpusim/src/lib.rs crates/gpusim/src/calibrate.rs crates/gpusim/src/exec.rs crates/gpusim/src/launch.rs crates/gpusim/src/model.rs crates/gpusim/src/occupancy.rs crates/gpusim/src/params.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/calibrate.rs:
crates/gpusim/src/exec.rs:
crates/gpusim/src/launch.rs:
crates/gpusim/src/model.rs:
crates/gpusim/src/occupancy.rs:
crates/gpusim/src/params.rs:
