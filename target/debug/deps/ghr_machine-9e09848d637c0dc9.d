/root/repo/target/debug/deps/ghr_machine-9e09848d637c0dc9.d: crates/machine/src/lib.rs crates/machine/src/cpu.rs crates/machine/src/gpu.rs crates/machine/src/link.rs crates/machine/src/machine.rs

/root/repo/target/debug/deps/libghr_machine-9e09848d637c0dc9.rlib: crates/machine/src/lib.rs crates/machine/src/cpu.rs crates/machine/src/gpu.rs crates/machine/src/link.rs crates/machine/src/machine.rs

/root/repo/target/debug/deps/libghr_machine-9e09848d637c0dc9.rmeta: crates/machine/src/lib.rs crates/machine/src/cpu.rs crates/machine/src/gpu.rs crates/machine/src/link.rs crates/machine/src/machine.rs

crates/machine/src/lib.rs:
crates/machine/src/cpu.rs:
crates/machine/src/gpu.rs:
crates/machine/src/link.rs:
crates/machine/src/machine.rs:
