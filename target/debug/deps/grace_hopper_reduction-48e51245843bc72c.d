/root/repo/target/debug/deps/grace_hopper_reduction-48e51245843bc72c.d: src/lib.rs

/root/repo/target/debug/deps/grace_hopper_reduction-48e51245843bc72c: src/lib.rs

src/lib.rs:
