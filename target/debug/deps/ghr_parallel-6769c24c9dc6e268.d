/root/repo/target/debug/deps/ghr_parallel-6769c24c9dc6e268.d: crates/parallel/src/lib.rs crates/parallel/src/kernels.rs crates/parallel/src/pool.rs crates/parallel/src/reduce.rs crates/parallel/src/scope.rs

/root/repo/target/debug/deps/libghr_parallel-6769c24c9dc6e268.rlib: crates/parallel/src/lib.rs crates/parallel/src/kernels.rs crates/parallel/src/pool.rs crates/parallel/src/reduce.rs crates/parallel/src/scope.rs

/root/repo/target/debug/deps/libghr_parallel-6769c24c9dc6e268.rmeta: crates/parallel/src/lib.rs crates/parallel/src/kernels.rs crates/parallel/src/pool.rs crates/parallel/src/reduce.rs crates/parallel/src/scope.rs

crates/parallel/src/lib.rs:
crates/parallel/src/kernels.rs:
crates/parallel/src/pool.rs:
crates/parallel/src/reduce.rs:
crates/parallel/src/scope.rs:
