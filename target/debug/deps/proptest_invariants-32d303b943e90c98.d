/root/repo/target/debug/deps/proptest_invariants-32d303b943e90c98.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-32d303b943e90c98: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
