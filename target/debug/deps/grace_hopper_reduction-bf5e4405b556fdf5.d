/root/repo/target/debug/deps/grace_hopper_reduction-bf5e4405b556fdf5.d: src/lib.rs

/root/repo/target/debug/deps/libgrace_hopper_reduction-bf5e4405b556fdf5.rlib: src/lib.rs

/root/repo/target/debug/deps/libgrace_hopper_reduction-bf5e4405b556fdf5.rmeta: src/lib.rs

src/lib.rs:
