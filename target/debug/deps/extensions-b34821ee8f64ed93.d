/root/repo/target/debug/deps/extensions-b34821ee8f64ed93.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-b34821ee8f64ed93.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
