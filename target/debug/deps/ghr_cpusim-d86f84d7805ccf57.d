/root/repo/target/debug/deps/ghr_cpusim-d86f84d7805ccf57.d: crates/cpusim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libghr_cpusim-d86f84d7805ccf57.rmeta: crates/cpusim/src/lib.rs Cargo.toml

crates/cpusim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
