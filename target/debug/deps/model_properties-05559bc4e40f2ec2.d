/root/repo/target/debug/deps/model_properties-05559bc4e40f2ec2.d: crates/gpusim/tests/model_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_properties-05559bc4e40f2ec2.rmeta: crates/gpusim/tests/model_properties.rs Cargo.toml

crates/gpusim/tests/model_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
