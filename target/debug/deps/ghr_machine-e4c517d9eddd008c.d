/root/repo/target/debug/deps/ghr_machine-e4c517d9eddd008c.d: crates/machine/src/lib.rs crates/machine/src/cpu.rs crates/machine/src/gpu.rs crates/machine/src/link.rs crates/machine/src/machine.rs Cargo.toml

/root/repo/target/debug/deps/libghr_machine-e4c517d9eddd008c.rmeta: crates/machine/src/lib.rs crates/machine/src/cpu.rs crates/machine/src/gpu.rs crates/machine/src/link.rs crates/machine/src/machine.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/cpu.rs:
crates/machine/src/gpu.rs:
crates/machine/src/link.rs:
crates/machine/src/machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
