/root/repo/target/debug/deps/ghr_cli-29a0233d3d517764.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/ghr_cli-29a0233d3d517764: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
