/root/repo/target/debug/examples/pragmas-287c03dcc5a239b2.d: examples/pragmas.rs

/root/repo/target/debug/examples/pragmas-287c03dcc5a239b2: examples/pragmas.rs

examples/pragmas.rs:
