/root/repo/target/debug/examples/custom_machine-c7bd310f03d19d0f.d: examples/custom_machine.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_machine-c7bd310f03d19d0f.rmeta: examples/custom_machine.rs Cargo.toml

examples/custom_machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
