/root/repo/target/debug/examples/co_execution-030ac31cfe226759.d: examples/co_execution.rs Cargo.toml

/root/repo/target/debug/examples/libco_execution-030ac31cfe226759.rmeta: examples/co_execution.rs Cargo.toml

examples/co_execution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
