/root/repo/target/debug/examples/listing6-786270028c16f772.d: examples/listing6.rs Cargo.toml

/root/repo/target/debug/examples/liblisting6-786270028c16f772.rmeta: examples/listing6.rs Cargo.toml

examples/listing6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
