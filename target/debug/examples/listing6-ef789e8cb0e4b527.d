/root/repo/target/debug/examples/listing6-ef789e8cb0e4b527.d: examples/listing6.rs

/root/repo/target/debug/examples/listing6-ef789e8cb0e4b527: examples/listing6.rs

examples/listing6.rs:
