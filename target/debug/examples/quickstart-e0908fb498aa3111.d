/root/repo/target/debug/examples/quickstart-e0908fb498aa3111.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e0908fb498aa3111.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
