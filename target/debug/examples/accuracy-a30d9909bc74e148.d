/root/repo/target/debug/examples/accuracy-a30d9909bc74e148.d: examples/accuracy.rs Cargo.toml

/root/repo/target/debug/examples/libaccuracy-a30d9909bc74e148.rmeta: examples/accuracy.rs Cargo.toml

examples/accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
