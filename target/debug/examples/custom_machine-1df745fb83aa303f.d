/root/repo/target/debug/examples/custom_machine-1df745fb83aa303f.d: examples/custom_machine.rs

/root/repo/target/debug/examples/custom_machine-1df745fb83aa303f: examples/custom_machine.rs

examples/custom_machine.rs:
