/root/repo/target/debug/examples/gpu_sweep-10e037544dfc2135.d: examples/gpu_sweep.rs

/root/repo/target/debug/examples/gpu_sweep-10e037544dfc2135: examples/gpu_sweep.rs

examples/gpu_sweep.rs:
