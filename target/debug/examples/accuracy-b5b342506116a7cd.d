/root/repo/target/debug/examples/accuracy-b5b342506116a7cd.d: examples/accuracy.rs

/root/repo/target/debug/examples/accuracy-b5b342506116a7cd: examples/accuracy.rs

examples/accuracy.rs:
