/root/repo/target/debug/examples/cpu_scaling-90ceb9bfcf3aa6e4.d: examples/cpu_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libcpu_scaling-90ceb9bfcf3aa6e4.rmeta: examples/cpu_scaling.rs Cargo.toml

examples/cpu_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
