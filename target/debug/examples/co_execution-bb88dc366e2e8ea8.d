/root/repo/target/debug/examples/co_execution-bb88dc366e2e8ea8.d: examples/co_execution.rs

/root/repo/target/debug/examples/co_execution-bb88dc366e2e8ea8: examples/co_execution.rs

examples/co_execution.rs:
