/root/repo/target/debug/examples/cpu_scaling-d05d690dc0a0baaf.d: examples/cpu_scaling.rs

/root/repo/target/debug/examples/cpu_scaling-d05d690dc0a0baaf: examples/cpu_scaling.rs

examples/cpu_scaling.rs:
