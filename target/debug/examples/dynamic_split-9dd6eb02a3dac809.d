/root/repo/target/debug/examples/dynamic_split-9dd6eb02a3dac809.d: examples/dynamic_split.rs

/root/repo/target/debug/examples/dynamic_split-9dd6eb02a3dac809: examples/dynamic_split.rs

examples/dynamic_split.rs:
