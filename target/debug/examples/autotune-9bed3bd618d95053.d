/root/repo/target/debug/examples/autotune-9bed3bd618d95053.d: examples/autotune.rs

/root/repo/target/debug/examples/autotune-9bed3bd618d95053: examples/autotune.rs

examples/autotune.rs:
