/root/repo/target/debug/examples/dynamic_split-33495e5e52d7a5bf.d: examples/dynamic_split.rs Cargo.toml

/root/repo/target/debug/examples/libdynamic_split-33495e5e52d7a5bf.rmeta: examples/dynamic_split.rs Cargo.toml

examples/dynamic_split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
