/root/repo/target/debug/examples/quickstart-92465803abf908ce.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-92465803abf908ce: examples/quickstart.rs

examples/quickstart.rs:
