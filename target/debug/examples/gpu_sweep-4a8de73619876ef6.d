/root/repo/target/debug/examples/gpu_sweep-4a8de73619876ef6.d: examples/gpu_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libgpu_sweep-4a8de73619876ef6.rmeta: examples/gpu_sweep.rs Cargo.toml

examples/gpu_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
