/root/repo/target/debug/examples/autotune-6ac7202c4450faa4.d: examples/autotune.rs Cargo.toml

/root/repo/target/debug/examples/libautotune-6ac7202c4450faa4.rmeta: examples/autotune.rs Cargo.toml

examples/autotune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
