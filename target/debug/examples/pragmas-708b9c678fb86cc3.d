/root/repo/target/debug/examples/pragmas-708b9c678fb86cc3.d: examples/pragmas.rs Cargo.toml

/root/repo/target/debug/examples/libpragmas-708b9c678fb86cc3.rmeta: examples/pragmas.rs Cargo.toml

examples/pragmas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
