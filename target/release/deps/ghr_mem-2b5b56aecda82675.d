/root/repo/target/release/deps/ghr_mem-2b5b56aecda82675.d: crates/mem/src/lib.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/traffic.rs crates/mem/src/um.rs

/root/repo/target/release/deps/libghr_mem-2b5b56aecda82675.rlib: crates/mem/src/lib.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/traffic.rs crates/mem/src/um.rs

/root/repo/target/release/deps/libghr_mem-2b5b56aecda82675.rmeta: crates/mem/src/lib.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/traffic.rs crates/mem/src/um.rs

crates/mem/src/lib.rs:
crates/mem/src/page.rs:
crates/mem/src/region.rs:
crates/mem/src/traffic.rs:
crates/mem/src/um.rs:
