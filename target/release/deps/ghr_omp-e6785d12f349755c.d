/root/repo/target/release/deps/ghr_omp-e6785d12f349755c.d: crates/omp/src/lib.rs crates/omp/src/clause.rs crates/omp/src/data_env.rs crates/omp/src/env.rs crates/omp/src/heuristics.rs crates/omp/src/host_region.rs crates/omp/src/outcome.rs crates/omp/src/parse.rs crates/omp/src/region.rs crates/omp/src/runtime.rs

/root/repo/target/release/deps/libghr_omp-e6785d12f349755c.rlib: crates/omp/src/lib.rs crates/omp/src/clause.rs crates/omp/src/data_env.rs crates/omp/src/env.rs crates/omp/src/heuristics.rs crates/omp/src/host_region.rs crates/omp/src/outcome.rs crates/omp/src/parse.rs crates/omp/src/region.rs crates/omp/src/runtime.rs

/root/repo/target/release/deps/libghr_omp-e6785d12f349755c.rmeta: crates/omp/src/lib.rs crates/omp/src/clause.rs crates/omp/src/data_env.rs crates/omp/src/env.rs crates/omp/src/heuristics.rs crates/omp/src/host_region.rs crates/omp/src/outcome.rs crates/omp/src/parse.rs crates/omp/src/region.rs crates/omp/src/runtime.rs

crates/omp/src/lib.rs:
crates/omp/src/clause.rs:
crates/omp/src/data_env.rs:
crates/omp/src/env.rs:
crates/omp/src/heuristics.rs:
crates/omp/src/host_region.rs:
crates/omp/src/outcome.rs:
crates/omp/src/parse.rs:
crates/omp/src/region.rs:
crates/omp/src/runtime.rs:
