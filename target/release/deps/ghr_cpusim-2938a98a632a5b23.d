/root/repo/target/release/deps/ghr_cpusim-2938a98a632a5b23.d: crates/cpusim/src/lib.rs

/root/repo/target/release/deps/libghr_cpusim-2938a98a632a5b23.rlib: crates/cpusim/src/lib.rs

/root/repo/target/release/deps/libghr_cpusim-2938a98a632a5b23.rmeta: crates/cpusim/src/lib.rs

crates/cpusim/src/lib.rs:
