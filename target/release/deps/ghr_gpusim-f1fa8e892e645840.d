/root/repo/target/release/deps/ghr_gpusim-f1fa8e892e645840.d: crates/gpusim/src/lib.rs crates/gpusim/src/calibrate.rs crates/gpusim/src/exec.rs crates/gpusim/src/launch.rs crates/gpusim/src/model.rs crates/gpusim/src/occupancy.rs crates/gpusim/src/params.rs

/root/repo/target/release/deps/libghr_gpusim-f1fa8e892e645840.rlib: crates/gpusim/src/lib.rs crates/gpusim/src/calibrate.rs crates/gpusim/src/exec.rs crates/gpusim/src/launch.rs crates/gpusim/src/model.rs crates/gpusim/src/occupancy.rs crates/gpusim/src/params.rs

/root/repo/target/release/deps/libghr_gpusim-f1fa8e892e645840.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/calibrate.rs crates/gpusim/src/exec.rs crates/gpusim/src/launch.rs crates/gpusim/src/model.rs crates/gpusim/src/occupancy.rs crates/gpusim/src/params.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/calibrate.rs:
crates/gpusim/src/exec.rs:
crates/gpusim/src/launch.rs:
crates/gpusim/src/model.rs:
crates/gpusim/src/occupancy.rs:
crates/gpusim/src/params.rs:
