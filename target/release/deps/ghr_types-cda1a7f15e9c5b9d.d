/root/repo/target/release/deps/ghr_types-cda1a7f15e9c5b9d.d: crates/types/src/lib.rs crates/types/src/device.rs crates/types/src/dtype.rs crates/types/src/error.rs crates/types/src/stats.rs crates/types/src/units.rs

/root/repo/target/release/deps/libghr_types-cda1a7f15e9c5b9d.rlib: crates/types/src/lib.rs crates/types/src/device.rs crates/types/src/dtype.rs crates/types/src/error.rs crates/types/src/stats.rs crates/types/src/units.rs

/root/repo/target/release/deps/libghr_types-cda1a7f15e9c5b9d.rmeta: crates/types/src/lib.rs crates/types/src/device.rs crates/types/src/dtype.rs crates/types/src/error.rs crates/types/src/stats.rs crates/types/src/units.rs

crates/types/src/lib.rs:
crates/types/src/device.rs:
crates/types/src/dtype.rs:
crates/types/src/error.rs:
crates/types/src/stats.rs:
crates/types/src/units.rs:
