/root/repo/target/release/deps/ghr_parallel-19a899b5792b6a1f.d: crates/parallel/src/lib.rs crates/parallel/src/kernels.rs crates/parallel/src/pool.rs crates/parallel/src/reduce.rs crates/parallel/src/scope.rs

/root/repo/target/release/deps/libghr_parallel-19a899b5792b6a1f.rlib: crates/parallel/src/lib.rs crates/parallel/src/kernels.rs crates/parallel/src/pool.rs crates/parallel/src/reduce.rs crates/parallel/src/scope.rs

/root/repo/target/release/deps/libghr_parallel-19a899b5792b6a1f.rmeta: crates/parallel/src/lib.rs crates/parallel/src/kernels.rs crates/parallel/src/pool.rs crates/parallel/src/reduce.rs crates/parallel/src/scope.rs

crates/parallel/src/lib.rs:
crates/parallel/src/kernels.rs:
crates/parallel/src/pool.rs:
crates/parallel/src/reduce.rs:
crates/parallel/src/scope.rs:
