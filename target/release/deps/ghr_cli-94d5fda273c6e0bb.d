/root/repo/target/release/deps/ghr_cli-94d5fda273c6e0bb.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libghr_cli-94d5fda273c6e0bb.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libghr_cli-94d5fda273c6e0bb.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
