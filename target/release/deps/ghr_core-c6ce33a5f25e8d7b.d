/root/repo/target/release/deps/ghr_core-c6ce33a5f25e8d7b.d: crates/core/src/lib.rs crates/core/src/accuracy.rs crates/core/src/autotune.rs crates/core/src/case.rs crates/core/src/corun.rs crates/core/src/engine.rs crates/core/src/explain.rs crates/core/src/plot.rs crates/core/src/pricing.rs crates/core/src/reduction.rs crates/core/src/report.rs crates/core/src/sched.rs crates/core/src/study.rs crates/core/src/sweep.rs crates/core/src/table1.rs crates/core/src/verify.rs crates/core/src/whatif.rs crates/core/src/workload.rs

/root/repo/target/release/deps/libghr_core-c6ce33a5f25e8d7b.rlib: crates/core/src/lib.rs crates/core/src/accuracy.rs crates/core/src/autotune.rs crates/core/src/case.rs crates/core/src/corun.rs crates/core/src/engine.rs crates/core/src/explain.rs crates/core/src/plot.rs crates/core/src/pricing.rs crates/core/src/reduction.rs crates/core/src/report.rs crates/core/src/sched.rs crates/core/src/study.rs crates/core/src/sweep.rs crates/core/src/table1.rs crates/core/src/verify.rs crates/core/src/whatif.rs crates/core/src/workload.rs

/root/repo/target/release/deps/libghr_core-c6ce33a5f25e8d7b.rmeta: crates/core/src/lib.rs crates/core/src/accuracy.rs crates/core/src/autotune.rs crates/core/src/case.rs crates/core/src/corun.rs crates/core/src/engine.rs crates/core/src/explain.rs crates/core/src/plot.rs crates/core/src/pricing.rs crates/core/src/reduction.rs crates/core/src/report.rs crates/core/src/sched.rs crates/core/src/study.rs crates/core/src/sweep.rs crates/core/src/table1.rs crates/core/src/verify.rs crates/core/src/whatif.rs crates/core/src/workload.rs

crates/core/src/lib.rs:
crates/core/src/accuracy.rs:
crates/core/src/autotune.rs:
crates/core/src/case.rs:
crates/core/src/corun.rs:
crates/core/src/engine.rs:
crates/core/src/explain.rs:
crates/core/src/plot.rs:
crates/core/src/pricing.rs:
crates/core/src/reduction.rs:
crates/core/src/report.rs:
crates/core/src/sched.rs:
crates/core/src/study.rs:
crates/core/src/sweep.rs:
crates/core/src/table1.rs:
crates/core/src/verify.rs:
crates/core/src/whatif.rs:
crates/core/src/workload.rs:
