/root/repo/target/release/deps/grace_hopper_reduction-0fceec585a3790b8.d: src/lib.rs

/root/repo/target/release/deps/libgrace_hopper_reduction-0fceec585a3790b8.rlib: src/lib.rs

/root/repo/target/release/deps/libgrace_hopper_reduction-0fceec585a3790b8.rmeta: src/lib.rs

src/lib.rs:
