/root/repo/target/release/deps/ghr_machine-c9af9c4a33e0871c.d: crates/machine/src/lib.rs crates/machine/src/cpu.rs crates/machine/src/gpu.rs crates/machine/src/link.rs crates/machine/src/machine.rs

/root/repo/target/release/deps/libghr_machine-c9af9c4a33e0871c.rlib: crates/machine/src/lib.rs crates/machine/src/cpu.rs crates/machine/src/gpu.rs crates/machine/src/link.rs crates/machine/src/machine.rs

/root/repo/target/release/deps/libghr_machine-c9af9c4a33e0871c.rmeta: crates/machine/src/lib.rs crates/machine/src/cpu.rs crates/machine/src/gpu.rs crates/machine/src/link.rs crates/machine/src/machine.rs

crates/machine/src/lib.rs:
crates/machine/src/cpu.rs:
crates/machine/src/gpu.rs:
crates/machine/src/link.rs:
crates/machine/src/machine.rs:
