/root/repo/target/release/deps/ghr-46bbc02bec46f781.d: crates/cli/src/main.rs

/root/repo/target/release/deps/ghr-46bbc02bec46f781: crates/cli/src/main.rs

crates/cli/src/main.rs:
