//! Golden-number regression tests: freeze the calibrated model's outputs
//! so accidental parameter or formula drift is caught immediately. The
//! values are this repository's reproduced numbers (EXPERIMENTS.md), with
//! a 0.5% tolerance for floating-point/formatting churn.

use grace_hopper_reduction::core::{
    corun::{run_corun, AllocSite, CorunConfig},
    sweep::GpuSweep,
    table1::table1,
    Case, KernelKind, ReductionSpec,
};
use grace_hopper_reduction::prelude::{MachineConfig, OmpRuntime};

fn close(actual: f64, golden: f64, what: &str) {
    let err = (actual - golden).abs() / golden;
    assert!(
        err < 0.005,
        "{what}: {actual:.1} drifted from golden {golden:.1} ({:.2}%)",
        err * 100.0
    );
}

#[test]
fn golden_table1() {
    let rt = OmpRuntime::new(MachineConfig::gh200());
    let t = table1(&rt).unwrap();
    let golden_base = [619.1, 171.8, 270.3, 525.6];
    let golden_opt = [3793.0, 3596.0, 3793.0, 3833.0];
    for (i, row) in t.rows.iter().enumerate() {
        close(row.base_gbps, golden_base[i], &format!("{} base", row.case));
        close(row.opt_gbps, golden_opt[i], &format!("{} opt", row.case));
    }
}

#[test]
fn golden_fig1_c1_series() {
    // The v4 column of our Fig. 1a (teams axis -> GB/s).
    let rt = OmpRuntime::new(MachineConfig::gh200());
    let r = GpuSweep::paper(Case::C1).run(&rt).unwrap();
    let golden: [(u64, f64); 5] = [
        (1024, 930.0),
        (2048, 1855.0),
        (4096, 3694.0),
        (8192, 3793.0),
        (65536, 3793.0),
    ];
    for (teams, gbps) in golden {
        close(
            r.gbps_at(teams, 4).unwrap(),
            gbps,
            &format!("fig1a v4 teams={teams}"),
        );
    }
    // The v1 plateau (concurrency-starved).
    close(r.gbps_at(65536, 1).unwrap(), 959.0, "fig1a v1 plateau");
}

#[test]
fn golden_corun_endpoints_c1() {
    let machine = MachineConfig::gh200();
    let kind = ReductionSpec::optimized_paper(Case::C1).kind;
    let a1 = run_corun(&machine, &CorunConfig::paper(Case::C1, kind, AllocSite::A1)).unwrap();
    close(a1.gpu_only_gbps(), 1473.0, "A1 opt GPU-only");
    close(a1.cpu_only_gbps(), 328.8, "A1 opt CPU-only");
    close(a1.peak().gbps, 3269.0, "A1 opt peak");
    assert_eq!(a1.peak().p, 0.1);

    let base = run_corun(
        &machine,
        &CorunConfig::paper(Case::C1, KernelKind::Baseline, AllocSite::A1),
    )
    .unwrap();
    close(base.gpu_only_gbps(), 494.0, "A1 base GPU-only");
    close(base.peak().gbps, 884.0, "A1 base peak");

    let a2 = run_corun(&machine, &CorunConfig::paper(Case::C1, kind, AllocSite::A2)).unwrap();
    close(a2.cpu_only_gbps(), 449.6, "A2 opt CPU-only");
    close(a2.peak().gbps, 1636.0, "A2 opt peak");
}

#[test]
fn golden_baseline_launch_geometry() {
    // The NVHPC heuristic geometry is behaviour, not calibration — it must
    // match the paper's profile exactly, not within tolerance.
    let rt = OmpRuntime::new(MachineConfig::gh200());
    for (case, grid) in [
        (Case::C1, 8_192_000u64),
        (Case::C2, 16_777_215),
        (Case::C3, 8_192_000),
        (Case::C4, 8_192_000),
    ] {
        let launch = ReductionSpec::baseline(case)
            .region()
            .resolve_launch(case.m_paper(), case.elem(), case.acc())
            .unwrap();
        assert_eq!(launch.num_teams, grid, "{case}");
        assert_eq!(launch.threads_per_team, 128, "{case}");
        let _ = &rt;
    }
}
