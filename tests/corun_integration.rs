//! Integration tests of the Section IV co-execution pipeline: functional
//! split verification plus placement-history assertions that span the
//! UM simulator, both timing models, and the drivers.

use grace_hopper_reduction::core::{
    corun::{run_corun, AllocSite, CorunConfig},
    verify, Case, KernelKind, ReductionSpec,
};
use grace_hopper_reduction::prelude::{MachineConfig, OmpRuntime};

fn opt_kind(case: Case) -> KernelKind {
    ReductionSpec::optimized_paper(case).kind
}

#[test]
fn functional_split_matches_serial_for_all_cases_and_splits() {
    let rt = OmpRuntime::new(MachineConfig::gh200());
    let m = Case::C1.m_scaled(200_000);
    for case in Case::ALL {
        let spec = ReductionSpec::optimized_paper(case);
        for p in [0u64, 1, 3, 5, 9, 10] {
            verify::verify_split(&rt, &spec, m, p, 10)
                .unwrap_or_else(|e| panic!("{case} p={p}/10: {e}"));
        }
    }
}

#[test]
fn a1_history_carries_across_p_values() {
    // The defining property of A1: the p=0 iteration migrates the whole
    // array to HBM, and every later CPU part reads it remotely. Assert the
    // bandwidth consequences on a scaled run.
    let machine = MachineConfig::gh200();
    let cfg = CorunConfig::paper(Case::C1, opt_kind(Case::C1), AllocSite::A1).scaled(2_000_000, 20);
    let s = run_corun(&machine, &cfg).unwrap();
    // p=0 migrated everything...
    assert!(s.points[0].migrated_to_gpu.0 > 0);
    // ...and p=1 reads everything remotely (A1's slow CPU-only endpoint).
    let last = s.points.last().unwrap();
    assert!(last.cpu_remote.0 > 0);
    assert_eq!(last.migrated_to_gpu.0, 0);
}

#[test]
fn a2_fresh_allocations_reset_history() {
    let machine = MachineConfig::gh200();
    let cfg = CorunConfig::paper(Case::C1, opt_kind(Case::C1), AllocSite::A2).scaled(2_000_000, 20);
    let s = run_corun(&machine, &cfg).unwrap();
    // The CPU part is freshly CPU-resident. At scaled sizes the p boundary
    // can land mid-page, so the single boundary page may be pulled to the
    // GPU and read back remotely (page-granularity false sharing) — allow
    // at most one page's worth of remote bytes per repetition.
    let bound = machine.page_size.0 * cfg.n_reps as u64;
    assert!(
        s.points.iter().all(|p| p.cpu_remote.0 <= bound),
        "{:?}",
        s.points.iter().map(|p| p.cpu_remote.0).collect::<Vec<_>>()
    );
    // The GPU part re-migrates at every p < 1.
    for pt in &s.points {
        if pt.p < 0.999 {
            assert!(pt.migrated_to_gpu.0 > 0, "p={}", pt.p);
        }
    }
}

#[test]
fn a1_beats_a2_for_co_execution_but_loses_cpu_only() {
    // The paper's headline A1/A2 contrast, at full scale for fidelity.
    let machine = MachineConfig::gh200();
    let kind = opt_kind(Case::C1);
    let a1 = run_corun(&machine, &CorunConfig::paper(Case::C1, kind, AllocSite::A1)).unwrap();
    let a2 = run_corun(&machine, &CorunConfig::paper(Case::C1, kind, AllocSite::A2)).unwrap();
    // Co-execution peak: A1 wins (no per-p migration, GPU part in HBM).
    assert!(
        a1.peak().gbps > a2.peak().gbps,
        "A1 peak {:.0} vs A2 peak {:.0}",
        a1.peak().gbps,
        a2.peak().gbps
    );
    // CPU-only: A2 wins (paper: by 1.367x).
    let ratio = a2.cpu_only_gbps() / a1.cpu_only_gbps();
    assert!((ratio - 1.367).abs() < 0.08, "ratio {ratio:.3}");
}

#[test]
fn baseline_vs_optimized_gap_closes_as_cpu_takes_over() {
    // Fig. 3's qualitative claim: the optimized kernel only matters while
    // the GPU holds a large share.
    let machine = MachineConfig::gh200();
    let base = run_corun(
        &machine,
        &CorunConfig::paper(Case::C2, KernelKind::Baseline, AllocSite::A1),
    )
    .unwrap();
    let opt = run_corun(
        &machine,
        &CorunConfig::paper(Case::C2, opt_kind(Case::C2), AllocSite::A1),
    )
    .unwrap();
    let speedups = opt.speedup_vs(&base);
    let at_p0 = speedups[0].1;
    let at_p1 = speedups.last().unwrap().1;
    assert!(at_p0 > 4.0, "C2 p=0 speedup {at_p0:.2}");
    assert!((at_p1 - 1.0).abs() < 0.02, "C2 p=1 speedup {at_p1:.2}");
}

#[test]
fn disabling_contention_never_slows_the_corun() {
    let machine = MachineConfig::gh200();
    let mut with = CorunConfig::paper(Case::C1, KernelKind::Baseline, AllocSite::A2);
    with.n_reps = 20;
    let mut without = with;
    without.lpddr_contention = false;
    let s_with = run_corun(&machine, &with).unwrap();
    let s_without = run_corun(&machine, &without).unwrap();
    for (a, b) in s_with.points.iter().zip(&s_without.points) {
        assert!(b.gbps >= a.gbps - 1e-9, "p={}", a.p);
    }
}

#[test]
fn unified_runtime_map_clause_is_free() {
    // Listing 7 uses map(to: inD[0:LenD]); in UM mode it must not cost
    // anything — the co-run numbers rely on that.
    let rt = OmpRuntime::unified(MachineConfig::gh200());
    assert_eq!(
        rt.map_to_cost(grace_hopper_reduction::types::Bytes::gib(4)),
        grace_hopper_reduction::types::SimTime::ZERO
    );
}
