//! End-to-end integration: the full pipeline from machine description to
//! reproduced paper numbers, spanning every crate.

use grace_hopper_reduction::core::{study, sweep::GpuSweep, table1, verify};
use grace_hopper_reduction::prelude::*;

fn rt() -> OmpRuntime {
    OmpRuntime::new(MachineConfig::gh200())
}

#[test]
fn table1_reproduces_within_two_percent() {
    let t = table1::table1(&rt()).unwrap();
    assert!(
        t.max_relative_error() < 0.02,
        "max relative error {:.4}",
        t.max_relative_error()
    );
    // Paper's qualitative claims.
    for row in &t.rows {
        assert!(row.speedup >= 6.0 && row.speedup <= 21.5, "{row:?}");
        assert!(row.eff_opt >= 0.89 && row.eff_opt <= 0.96, "{row:?}");
        assert!(row.eff_base <= 0.155, "{row:?}");
    }
}

#[test]
fn sweep_best_matches_paper_for_every_case() {
    let rt = rt();
    for case in Case::ALL {
        let result = GpuSweep::paper(case).run(&rt).unwrap();
        let best = result.best();
        assert_eq!(best.v, case.v_optimized(), "{case}: best {best:?}");
    }
}

#[test]
fn optimized_speedup_band_matches_table1() {
    // Paper: 6.120x (C1) to 20.906x (C2).
    let rt = rt();
    let t = table1::table1(&rt).unwrap();
    let speedups: Vec<f64> = t.rows.iter().map(|r| r.speedup).collect();
    let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    assert!((min - 6.120).abs() / 6.120 < 0.05, "min speedup {min}");
    assert!((max - 20.906).abs() / 20.906 < 0.05, "max speedup {max}");
}

#[test]
fn every_case_verifies_functionally_at_scale() {
    let rt = rt();
    let m = Case::C1.m_scaled(1_000_000);
    for case in Case::ALL {
        for spec in [
            ReductionSpec::baseline(case),
            ReductionSpec::optimized_paper(case),
        ] {
            verify::verify_spec(&rt, &spec, m).unwrap_or_else(|e| panic!("{case}: {e}"));
        }
    }
}

#[test]
fn corun_study_reproduces_section_iv_aggregates() {
    let machine = MachineConfig::gh200();
    let study = study::run_full_study_scaled(&machine, None, Some(50)).unwrap();
    let sum = study.summary();

    // A1 co-run beats GPU-only for every case, both kernels (paper Fig 2).
    for p in sum.a1_base_peaks.iter().chain(&sum.a1_opt_peaks) {
        assert!(*p > 1.3, "{sum:?}");
    }
    // A2's advantage is marginal (paper: avg 1.067).
    let a2_avg = sum.a2_opt_peaks.iter().sum::<f64>() / 4.0;
    assert!((1.0..1.3).contains(&a2_avg), "A2 avg {a2_avg}");
    // CPU-only asymmetry (paper: 1.367).
    assert!((sum.cpu_only_a2_over_a1 - 1.367).abs() < 0.1);
    // Fig 3 is more dramatic than Fig 5's tail behaviour at p=1.
    assert!(sum.fig3_range.1 > 2.0);
    assert!(sum.fig3_range.0 > 0.9 && sum.fig3_range.0 < 1.05);
}

#[test]
fn baseline_grid_heuristics_visible_end_to_end() {
    // The profiled NVHPC geometry must surface in the resolved launches.
    let rt = rt();
    let data: Vec<i32> = vec![1; 1 << 20];
    let out = rt
        .target_reduce_device(&data, &TargetRegion::baseline())
        .unwrap();
    assert_eq!(out.launch.num_teams, (1 << 20) / 128);
    assert_eq!(out.launch.threads_per_team, 128);
}

#[test]
fn prelude_exposes_a_usable_api() {
    // Compile-time check that the prelude covers the quickstart path.
    let rt = OmpRuntime::new(MachineConfig::gh200());
    let data: Vec<f64> = (0..10_000u64).map(|i| i as f64).collect();
    let out = rt
        .target_reduce_device(&data, &TargetRegion::optimized(1024, 2))
        .unwrap();
    let expect: f64 = data.iter().sum();
    assert!((out.value - expect).abs() < 1e-3);
}
