//! Integration tests for the extension experiments (what-if, scheduling,
//! accuracy, memory advice, operators) spanning the whole stack.

use grace_hopper_reduction::core::{
    corun::{run_corun, AllocSite, CorunConfig},
    sched::{run_scheduled, SchedConfig, SplitPolicy},
    whatif::whatif_study,
    workload::Workload,
    Case, ReductionSpec,
};
use grace_hopper_reduction::omp::{HostRegion, OmpRuntime, ReductionOp, TargetRegion};
use grace_hopper_reduction::prelude::MachineConfig;

#[test]
fn whatif_runtime_fixes_match_the_v1_ceiling_story() {
    let s = whatif_study(&MachineConfig::gh200()).unwrap();
    // Shipped = Table 1 baselines; any fix = V=1 ceiling; optimized far above.
    let shipped = s.rows[0].gbps[0];
    let fixed = s.rows[1].gbps[0];
    let optimized = s.optimized_gbps[0];
    assert!((shipped - 620.0).abs() < 15.0);
    assert!(fixed > 1.5 * shipped);
    assert!(optimized > 3.5 * fixed);
}

#[test]
fn advice_dominates_no_advice_across_the_whole_sweep() {
    // 200 repetitions, like the paper: the eager migrate-back that advice
    // triggers needs the full horizon to amortize.
    let machine = MachineConfig::gh200();
    let kind = ReductionSpec::optimized_paper(Case::C2).kind;
    let plain = run_corun(
        &machine,
        &CorunConfig::paper(Case::C2, kind, AllocSite::A1).scaled(20_000_000, 200),
    )
    .unwrap();
    let advised = run_corun(
        &machine,
        &CorunConfig::paper(Case::C2, kind, AllocSite::A1)
            .scaled(20_000_000, 200)
            .with_advice(),
    )
    .unwrap();
    for (a, p) in advised.points.iter().zip(&plain.points) {
        assert!(
            a.gbps >= p.gbps * 0.95,
            "p={}: {} vs {}",
            a.p,
            a.gbps,
            p.gbps
        );
    }
    assert!(advised.cpu_only_gbps() > plain.cpu_only_gbps());
}

#[test]
fn scheduling_policies_run_for_every_case() {
    let machine = MachineConfig::gh200();
    for case in Case::ALL {
        let cfg = SchedConfig::paper(case, SplitPolicy::Adaptive { p0: 0.3 }).scaled(2_000_000, 12);
        let out = run_scheduled(&machine, &cfg).unwrap();
        assert!(out.gbps > 0.0, "{case}");
        assert_eq!(out.per_rep_p.len(), 12);
    }
}

#[test]
fn operators_and_if_clause_compose_end_to_end() {
    let rt = OmpRuntime::new(MachineConfig::gh200());
    let data = Workload::UniformRandom { seed: 11 }.generate::<i32>(80_000);
    let expect_max = *data.iter().max().unwrap();

    // Max on the device...
    let mut device = TargetRegion::optimized(2048, 2);
    device.reduction = ReductionOp::Max;
    let (v, _, d) = rt.target_reduce(&data, &device).unwrap();
    assert_eq!(v, expect_max);
    assert!(d.is_gpu());

    // ...and on the host via if(target: 0).
    let (v, _, d) = rt
        .target_reduce(&data, &device.with_if_target(false))
        .unwrap();
    assert_eq!(v, expect_max);
    assert!(d.is_host());

    // ...and via the host worksharing construct.
    let mut host = HostRegion::for_simd();
    host.reduction = ReductionOp::Max;
    let out = rt.host_reduce_region(&data, &host).unwrap();
    assert_eq!(out.value, expect_max);
}

#[test]
fn listing7_pair_reproduces_the_split_sum() {
    // The full Listing 7 shape: host region over the front, nowait target
    // region over the back, partials added.
    let rt = OmpRuntime::unified(MachineConfig::gh200());
    let data = Workload::UniformRandom { seed: 5 }.generate::<i8>(200_000);
    let expect: i64 = data.iter().map(|&x| x as i64).sum();
    let (front, back) = data.split_at(60_000);
    let sum_h = rt
        .host_reduce_region(front, &HostRegion::for_simd())
        .unwrap()
        .value;
    let sum_d = rt
        .target_reduce_device(back, &TargetRegion::optimized(65536, 32).with_nowait())
        .unwrap()
        .value;
    assert_eq!(sum_h + sum_d, expect);
}
