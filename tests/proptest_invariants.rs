//! Property-based invariants across the workspace: execution semantics,
//! page-placement conservation, and timing-model sanity.
//!
//! Two modes, same invariants:
//!
//! * with `--features proptest` (registry access required to restore the
//!   crate to [dev-dependencies]): shrinking proptest strategies;
//! * by default: a std-only SplitMix64 fallback that drives the same
//!   properties over seeded random cases, so the invariants run offline
//!   on every `cargo test`.

#[cfg(feature = "proptest")]
mod with_proptest {
    use grace_hopper_reduction::gpusim::{execute_reduction, GpuModel, LaunchConfig};
    use grace_hopper_reduction::machine::{GpuSpec, MachineConfig};
    use grace_hopper_reduction::mem::{Residency, UnifiedMemory};
    use grace_hopper_reduction::parallel::{parallel_sum_unrolled, sum_sequential, ChunkPolicy};
    use grace_hopper_reduction::types::{Bytes, DType, Device};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The device executor computes exactly the sequential sum for
        /// integers, for any geometry.
        #[test]
        fn device_execution_matches_sequential_i32(
            data in proptest::collection::vec(-1000i32..1000, 1..5000),
            cfg in (1u64..100_000, 0usize..5, 0usize..6),
        ) {
            let threads = [32u32, 64, 128, 256, 512][cfg.1];
            let v = [1u32, 2, 4, 8, 16, 32][cfg.2];
            let launch = LaunchConfig {
                num_teams: cfg.0,
                threads_per_team: threads,
                v,
                m: data.len() as u64,
                elem: DType::I32,
                acc: DType::I32,
            };
            let got = execute_reduction(&data, &launch).unwrap();
            prop_assert_eq!(got, sum_sequential(&data));
        }

        /// The parallel CPU kernels match the sequential sum for i8 -> i64
        /// under any thread count, unroll factor and chunk policy.
        #[test]
        fn parallel_cpu_reduction_matches_sequential_i8(
            data in proptest::collection::vec(-100i8..100, 0..10_000),
            threads in 1usize..16,
            v_idx in 0usize..6,
            chunk in prop_oneof![
                Just(ChunkPolicy::Static),
                (1usize..500).prop_map(ChunkPolicy::StaticChunked)
            ],
        ) {
            let v = [1usize, 2, 4, 8, 16, 32][v_idx];
            let got = parallel_sum_unrolled(&data, threads, v, chunk);
            prop_assert_eq!(got, sum_sequential(&data));
        }

        /// Float device execution stays within the recursive-summation bound.
        #[test]
        fn device_execution_float_bounded(
            data in proptest::collection::vec(-1.0f64..1.0, 1..5000),
            num_teams in 1u64..10_000,
        ) {
            let launch = LaunchConfig {
                num_teams,
                threads_per_team: 128,
                v: 4,
                m: data.len() as u64,
                elem: DType::F64,
                acc: DType::F64,
            };
            let got = execute_reduction(&data, &launch).unwrap();
            let expect = sum_sequential(&data);
            let bound = f64::EPSILON * data.len() as f64 * data.len() as f64;
            prop_assert!((got - expect).abs() <= bound.max(1e-12),
                "got {got}, expect {expect}");
        }

        /// Page conservation: after any access sequence, every page is in
        /// exactly one residency state and the counts add up.
        #[test]
        fn page_states_are_conserved(
            len in 1u64..100_000,
            ops in proptest::collection::vec(
                (prop_oneof![Just(Device::Host), Just(Device::GPU0)], 0.0f64..1.0, 0.0f64..1.0),
                0..50
            ),
        ) {
            let mut machine = MachineConfig::gh200();
            machine.page_size = Bytes(4096);
            let mut um = UnifiedMemory::new(&machine);
            let rid = um.alloc(Bytes(len));
            let total_pages = len.div_ceil(4096);
            for (dev, a, b) in ops {
                let off = (a * len as f64) as u64;
                let n = ((b * (len - off) as f64) as u64).min(len - off);
                um.access(dev, rid, Bytes(off), Bytes(n));
                let (u, c, g) = um.residency_histogram(rid);
                prop_assert_eq!(u + c + g, total_pages);
            }
        }

        /// Accesses classify every requested byte exactly once.
        #[test]
        fn access_outcomes_account_for_all_bytes(
            len in 1u64..50_000,
            off_frac in 0.0f64..1.0,
            n_frac in 0.0f64..1.0,
        ) {
            let mut machine = MachineConfig::gh200();
            machine.page_size = Bytes(1024);
            let mut um = UnifiedMemory::new(&machine);
            let rid = um.alloc(Bytes(len));
            let off = (off_frac * len as f64) as u64;
            let n = ((n_frac * (len - off) as f64) as u64).min(len - off);
            let out = um.gpu_access(rid, Bytes(off), Bytes(n));
            prop_assert_eq!(out.total(), Bytes(n));
            let out = um.cpu_access(rid, Bytes(off), Bytes(n));
            prop_assert_eq!(out.total(), Bytes(n));
        }

        /// Model sanity: effective bandwidth never exceeds the peak, and time
        /// is monotone in the element count.
        #[test]
        fn gpu_model_sanity(
            num_teams in 1u64..100_000,
            t_idx in 0usize..5,
            v_idx in 0usize..6,
        ) {
            let cfg = LaunchConfig {
                num_teams,
                threads_per_team: [32u32, 64, 128, 256, 512][t_idx],
                v: [1u32, 2, 4, 8, 16, 32][v_idx],
                m: 1_000_000,
                elem: DType::F32,
                acc: DType::F32,
            };
            let model = GpuModel::new(GpuSpec::h100_sxm_gh200());
            let b = model.reduce(&cfg).unwrap();
            prop_assert!(b.total.is_valid_span());
            prop_assert!(b.effective_bw.as_gbps() <= model.spec().hbm_peak_bw.as_gbps() + 1e-9);
            let mut bigger = cfg;
            bigger.m *= 2;
            let b2 = model.reduce(&bigger).unwrap();
            prop_assert!(b2.total >= b.total);
        }

        /// GPU pages, once migrated to HBM, stay there under further GPU
        /// access (no thrash).
        #[test]
        fn migrated_pages_are_sticky(passes in 1usize..10) {
            let mut machine = MachineConfig::gh200();
            machine.page_size = Bytes(512);
            let mut um = UnifiedMemory::new(&machine);
            let rid = um.alloc(Bytes(8192));
            um.cpu_access(rid, Bytes(0), Bytes(8192));
            for _ in 0..passes {
                um.gpu_access(rid, Bytes(0), Bytes(8192));
            }
            let (_, _, gpu) = um.residency_histogram(rid);
            prop_assert_eq!(gpu, 16);
            // Pages remain GPU-resident; CPU reads do not steal them back.
            um.cpu_access(rid, Bytes(0), Bytes(8192));
            prop_assert_eq!(um.residency_at(rid, Bytes(0)), Residency::Gpu);
        }
    }
}

/// Std-only fallback: the same invariants over SplitMix64-seeded random
/// cases. No shrinking, but the properties themselves get exercised on
/// every offline `cargo test`.
#[cfg(not(feature = "proptest"))]
mod std_fallback {
    use grace_hopper_reduction::gpusim::{execute_reduction, GpuModel, LaunchConfig};
    use grace_hopper_reduction::machine::{GpuSpec, MachineConfig};
    use grace_hopper_reduction::mem::{Residency, UnifiedMemory};
    use grace_hopper_reduction::parallel::{parallel_sum_unrolled, sum_sequential, ChunkPolicy};
    use grace_hopper_reduction::types::{Bytes, DType, Device};

    struct SplitMix64(u64);

    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        /// Uniform in `[0, 1)`.
        fn unit(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    const CASES: usize = 64;

    #[test]
    fn device_execution_matches_sequential_i32() {
        let mut rng = SplitMix64(0x1457_0001);
        for _ in 0..CASES {
            let len = 1 + rng.below(5000) as usize;
            let data: Vec<i32> = (0..len).map(|_| rng.below(2000) as i32 - 1000).collect();
            let launch = LaunchConfig {
                num_teams: 1 + rng.below(100_000),
                threads_per_team: [32u32, 64, 128, 256, 512][rng.below(5) as usize],
                v: [1u32, 2, 4, 8, 16, 32][rng.below(6) as usize],
                m: data.len() as u64,
                elem: DType::I32,
                acc: DType::I32,
            };
            let got = execute_reduction(&data, &launch).unwrap();
            assert_eq!(got, sum_sequential(&data), "{launch:?}");
        }
    }

    #[test]
    fn parallel_cpu_reduction_matches_sequential_i8() {
        let mut rng = SplitMix64(0x1457_0002);
        for _ in 0..CASES {
            let len = rng.below(10_000) as usize;
            let data: Vec<i8> = (0..len)
                .map(|_| (rng.below(200) as i64 - 100) as i8)
                .collect();
            let threads = 1 + rng.below(15) as usize;
            let v = [1usize, 2, 4, 8, 16, 32][rng.below(6) as usize];
            let chunk = if rng.below(2) == 0 {
                ChunkPolicy::Static
            } else {
                ChunkPolicy::StaticChunked(1 + rng.below(499) as usize)
            };
            let got = parallel_sum_unrolled(&data, threads, v, chunk);
            assert_eq!(
                got,
                sum_sequential(&data),
                "threads={threads} v={v} {chunk:?}"
            );
        }
    }

    #[test]
    fn device_execution_float_bounded() {
        let mut rng = SplitMix64(0x1457_0003);
        for _ in 0..CASES {
            let len = 1 + rng.below(5000) as usize;
            let data: Vec<f64> = (0..len).map(|_| rng.unit() * 2.0 - 1.0).collect();
            let launch = LaunchConfig {
                num_teams: 1 + rng.below(10_000),
                threads_per_team: 128,
                v: 4,
                m: data.len() as u64,
                elem: DType::F64,
                acc: DType::F64,
            };
            let got = execute_reduction(&data, &launch).unwrap();
            let expect = sum_sequential(&data);
            let bound = f64::EPSILON * data.len() as f64 * data.len() as f64;
            assert!(
                (got - expect).abs() <= bound.max(1e-12),
                "got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn page_states_are_conserved() {
        let mut rng = SplitMix64(0x1457_0004);
        for _ in 0..CASES {
            let len = 1 + rng.below(100_000);
            let mut machine = MachineConfig::gh200();
            machine.page_size = Bytes(4096);
            let mut um = UnifiedMemory::new(&machine);
            let rid = um.alloc(Bytes(len));
            let total_pages = len.div_ceil(4096);
            for _ in 0..rng.below(50) {
                let dev = if rng.below(2) == 0 {
                    Device::Host
                } else {
                    Device::GPU0
                };
                let off = (rng.unit() * len as f64) as u64;
                let n = ((rng.unit() * (len - off) as f64) as u64).min(len - off);
                um.access(dev, rid, Bytes(off), Bytes(n));
                let (u, c, g) = um.residency_histogram(rid);
                assert_eq!(u + c + g, total_pages);
            }
        }
    }

    #[test]
    fn access_outcomes_account_for_all_bytes() {
        let mut rng = SplitMix64(0x1457_0005);
        for _ in 0..CASES {
            let len = 1 + rng.below(50_000);
            let mut machine = MachineConfig::gh200();
            machine.page_size = Bytes(1024);
            let mut um = UnifiedMemory::new(&machine);
            let rid = um.alloc(Bytes(len));
            let off = (rng.unit() * len as f64) as u64;
            let n = ((rng.unit() * (len - off) as f64) as u64).min(len - off);
            let out = um.gpu_access(rid, Bytes(off), Bytes(n));
            assert_eq!(out.total(), Bytes(n));
            let out = um.cpu_access(rid, Bytes(off), Bytes(n));
            assert_eq!(out.total(), Bytes(n));
        }
    }

    #[test]
    fn gpu_model_sanity() {
        let mut rng = SplitMix64(0x1457_0006);
        let model = GpuModel::new(GpuSpec::h100_sxm_gh200());
        for _ in 0..CASES {
            let cfg = LaunchConfig {
                num_teams: 1 + rng.below(100_000),
                threads_per_team: [32u32, 64, 128, 256, 512][rng.below(5) as usize],
                v: [1u32, 2, 4, 8, 16, 32][rng.below(6) as usize],
                m: 1_000_000,
                elem: DType::F32,
                acc: DType::F32,
            };
            let b = model.reduce(&cfg).unwrap();
            assert!(b.total.is_valid_span());
            assert!(b.effective_bw.as_gbps() <= model.spec().hbm_peak_bw.as_gbps() + 1e-9);
            let mut bigger = cfg;
            bigger.m *= 2;
            let b2 = model.reduce(&bigger).unwrap();
            assert!(b2.total >= b.total, "{cfg:?}");
        }
    }

    #[test]
    fn migrated_pages_are_sticky() {
        for passes in 1usize..10 {
            let mut machine = MachineConfig::gh200();
            machine.page_size = Bytes(512);
            let mut um = UnifiedMemory::new(&machine);
            let rid = um.alloc(Bytes(8192));
            um.cpu_access(rid, Bytes(0), Bytes(8192));
            for _ in 0..passes {
                um.gpu_access(rid, Bytes(0), Bytes(8192));
            }
            let (_, _, gpu) = um.residency_histogram(rid);
            assert_eq!(gpu, 16);
            // Pages remain GPU-resident; CPU reads do not steal them back.
            um.cpu_access(rid, Bytes(0), Bytes(8192));
            assert_eq!(um.residency_at(rid, Bytes(0)), Residency::Gpu);
        }
    }
}
