//! Property-based invariants across the workspace: execution semantics,
//! page-placement conservation, and timing-model sanity.

//
// Gated off by default: compiling this suite needs the `proptest` crate,
// which is not vendored. Restore it to [dev-dependencies] and build with
// `--features proptest` (registry access required).
#![cfg(feature = "proptest")]

use grace_hopper_reduction::gpusim::{execute_reduction, GpuModel, LaunchConfig};
use grace_hopper_reduction::machine::{GpuSpec, MachineConfig};
use grace_hopper_reduction::mem::{Residency, UnifiedMemory};
use grace_hopper_reduction::parallel::{parallel_sum_unrolled, sum_sequential, ChunkPolicy};
use grace_hopper_reduction::types::{Bytes, DType, Device};
use proptest::prelude::*;

fn launch_strategy(m: u64, elem: DType, acc: DType) -> impl Strategy<Value = LaunchConfig> {
    (
        1u64..100_000,
        prop_oneof![Just(32u32), Just(64), Just(128), Just(256), Just(512)],
        prop_oneof![Just(1u32), Just(2), Just(4), Just(8), Just(16), Just(32)],
    )
        .prop_map(move |(num_teams, threads_per_team, v)| LaunchConfig {
            num_teams,
            threads_per_team,
            v,
            m,
            elem,
            acc,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The device executor computes exactly the sequential sum for
    /// integers, for any geometry.
    #[test]
    fn device_execution_matches_sequential_i32(
        data in proptest::collection::vec(-1000i32..1000, 1..5000),
        cfg in (1u64..100_000, 0usize..5, 0usize..6),
    ) {
        let threads = [32u32, 64, 128, 256, 512][cfg.1];
        let v = [1u32, 2, 4, 8, 16, 32][cfg.2];
        let launch = LaunchConfig {
            num_teams: cfg.0,
            threads_per_team: threads,
            v,
            m: data.len() as u64,
            elem: DType::I32,
            acc: DType::I32,
        };
        let got = execute_reduction(&data, &launch).unwrap();
        prop_assert_eq!(got, sum_sequential(&data));
    }

    /// The parallel CPU kernels match the sequential sum for i8 -> i64
    /// under any thread count, unroll factor and chunk policy.
    #[test]
    fn parallel_cpu_reduction_matches_sequential_i8(
        data in proptest::collection::vec(-100i8..100, 0..10_000),
        threads in 1usize..16,
        v_idx in 0usize..6,
        chunk in prop_oneof![
            Just(ChunkPolicy::Static),
            (1usize..500).prop_map(ChunkPolicy::StaticChunked)
        ],
    ) {
        let v = [1usize, 2, 4, 8, 16, 32][v_idx];
        let got = parallel_sum_unrolled(&data, threads, v, chunk);
        prop_assert_eq!(got, sum_sequential(&data));
    }

    /// Float device execution stays within the recursive-summation bound.
    #[test]
    fn device_execution_float_bounded(
        data in proptest::collection::vec(-1.0f64..1.0, 1..5000),
        num_teams in 1u64..10_000,
    ) {
        let launch = LaunchConfig {
            num_teams,
            threads_per_team: 128,
            v: 4,
            m: data.len() as u64,
            elem: DType::F64,
            acc: DType::F64,
        };
        let got = execute_reduction(&data, &launch).unwrap();
        let expect = sum_sequential(&data);
        let bound = f64::EPSILON * data.len() as f64 * data.len() as f64;
        prop_assert!((got - expect).abs() <= bound.max(1e-12),
            "got {got}, expect {expect}");
    }

    /// Page conservation: after any access sequence, every page is in
    /// exactly one residency state and the counts add up.
    #[test]
    fn page_states_are_conserved(
        len in 1u64..100_000,
        ops in proptest::collection::vec(
            (prop_oneof![Just(Device::Host), Just(Device::GPU0)], 0.0f64..1.0, 0.0f64..1.0),
            0..50
        ),
    ) {
        let mut machine = MachineConfig::gh200();
        machine.page_size = Bytes(4096);
        let mut um = UnifiedMemory::new(&machine);
        let rid = um.alloc(Bytes(len));
        let total_pages = len.div_ceil(4096);
        for (dev, a, b) in ops {
            let off = (a * len as f64) as u64;
            let n = ((b * (len - off) as f64) as u64).min(len - off);
            um.access(dev, rid, Bytes(off), Bytes(n));
            let (u, c, g) = um.residency_histogram(rid);
            prop_assert_eq!(u + c + g, total_pages);
        }
    }

    /// Accesses classify every requested byte exactly once.
    #[test]
    fn access_outcomes_account_for_all_bytes(
        len in 1u64..50_000,
        off_frac in 0.0f64..1.0,
        n_frac in 0.0f64..1.0,
    ) {
        let mut machine = MachineConfig::gh200();
        machine.page_size = Bytes(1024);
        let mut um = UnifiedMemory::new(&machine);
        let rid = um.alloc(Bytes(len));
        let off = (off_frac * len as f64) as u64;
        let n = ((n_frac * (len - off) as f64) as u64).min(len - off);
        let out = um.gpu_access(rid, Bytes(off), Bytes(n));
        prop_assert_eq!(out.total(), Bytes(n));
        let out = um.cpu_access(rid, Bytes(off), Bytes(n));
        prop_assert_eq!(out.total(), Bytes(n));
    }

    /// Model sanity: effective bandwidth never exceeds the peak, and time
    /// is monotone in the element count.
    #[test]
    fn gpu_model_sanity(cfg in launch_strategy(1_000_000, DType::F32, DType::F32)) {
        let model = GpuModel::new(GpuSpec::h100_sxm_gh200());
        let b = model.reduce(&cfg).unwrap();
        prop_assert!(b.total.is_valid_span());
        prop_assert!(b.effective_bw.as_gbps() <= model.spec().hbm_peak_bw.as_gbps() + 1e-9);
        let mut bigger = cfg;
        bigger.m *= 2;
        let b2 = model.reduce(&bigger).unwrap();
        prop_assert!(b2.total >= b.total);
    }

    /// GPU pages, once migrated to HBM, stay there under further GPU
    /// access (no thrash).
    #[test]
    fn migrated_pages_are_sticky(passes in 1usize..10) {
        let mut machine = MachineConfig::gh200();
        machine.page_size = Bytes(512);
        let mut um = UnifiedMemory::new(&machine);
        let rid = um.alloc(Bytes(8192));
        um.cpu_access(rid, Bytes(0), Bytes(8192));
        for _ in 0..passes {
            um.gpu_access(rid, Bytes(0), Bytes(8192));
        }
        let (_, _, gpu) = um.residency_histogram(rid);
        prop_assert_eq!(gpu, 16);
        // Pages remain GPU-resident; CPU reads do not steal them back.
        um.cpu_access(rid, Bytes(0), Bytes(8192));
        prop_assert_eq!(um.residency_at(rid, Bytes(0)), Residency::Gpu);
    }
}
