//! # grace-hopper-reduction
//!
//! A Rust reproduction of *"Sum Reduction with OpenMP Offload on NVIDIA
//! Grace-Hopper System"* (Zheming Jin, SC 2024): an OpenMP-offload-style
//! execution model, a calibrated GH200 performance simulator (GPU kernel
//! timing, Grace CPU timing, NVLink-C2C unified-memory page placement), and
//! drivers that regenerate every table and figure of the paper.
//!
//! ## Quick start
//!
//! ```
//! use grace_hopper_reduction::prelude::*;
//!
//! // A GH200 node and an OpenMP runtime over it.
//! let rt = OmpRuntime::new(MachineConfig::gh200());
//!
//! // The paper's optimized kernel for case C1 (i32), on real data.
//! let data: Vec<i32> = (0..1_000_000).map(|i| i % 10).collect();
//! let out = rt
//!     .target_reduce_device(&data, &TargetRegion::optimized(65536, 4))
//!     .unwrap();
//! assert_eq!(out.value, data.iter().sum::<i32>());
//! println!("simulated kernel time: {}", out.time());
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |-------|------|
//! | [`types`] | dtypes, units, errors |
//! | [`machine`] | GH200 hardware description |
//! | [`mem`] | unified-memory page-placement simulator |
//! | [`gpusim`] | GPU kernel timing model + functional executor |
//! | [`cpusim`] | Grace CPU timing model |
//! | [`parallel`] | real thread pool + reduction kernels |
//! | [`omp`] | OpenMP-offload programming model |
//! | [`core`] | the paper's experiments (sweeps, Table 1, co-execution) and the parallel memoized [`core::engine`] |
//!
//! See `DESIGN.md` for the architecture and substitution rationale, and
//! `EXPERIMENTS.md` for paper-vs-reproduced numbers.

pub use ghr_core as core;
pub use ghr_cpusim as cpusim;
pub use ghr_gpusim as gpusim;
pub use ghr_machine as machine;
pub use ghr_mem as mem;
pub use ghr_omp as omp;
pub use ghr_parallel as parallel;
pub use ghr_types as types;

/// The commonly-used types in one import.
pub mod prelude {
    pub use ghr_core::{
        autotune::autotune, case::Case, corun::run_corun, corun::AllocSite, corun::CorunConfig,
        engine::Engine, reduction::KernelKind, reduction::ReductionSpec, study::run_full_study,
        sweep::GpuSweep, table1::table1,
    };
    pub use ghr_machine::MachineConfig;
    pub use ghr_omp::{OmpRuntime, TargetRegion};
    pub use ghr_types::{Bandwidth, Bytes, DType, Device, SimTime};
}
